"""Fleet live-tip semantics: update fan-out, receipt agreement, and
pending updates surviving (via the flush) a rolling restart.

Updates are replicated, not durable: an acknowledged update lives in
every rotation replica's overlay until a fold makes it a real batch.
The router therefore flushes pending updates to the durable tip
before restoring a restarted replica — the assertions here are the
receipt laws that flush preserves: strictly consecutive versions,
``(tip_version, overlay_depth)`` agreement across replicas, and no
acknowledged update ever lost.
"""

from __future__ import annotations

import threading
import time
from typing import List, Set, Tuple

import pytest

from repro.algorithms.registry import get_algorithm
from repro.errors import ProtocolError, ServiceError
from repro.evolving.store import SnapshotStore
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet, decode_edges
from repro.kickstarter.engine import static_compute

from tests.conftest import assert_values_equal

pytestmark = [pytest.mark.service, pytest.mark.fleet, pytest.mark.livetip]


def durable_tip_pairs(fleet, donor: str = "replica-0") -> Set[Tuple[int, int]]:
    store = SnapshotStore(fleet.replicas[donor].store_dir)
    edges = store.load().snapshot_edges(-1)
    sources, targets = decode_edges(edges.codes)
    return set(zip(sources.tolist(), targets.tolist()))


def fresh_edges(fleet, k: int,
                used: Set[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """``k`` edges absent from the durable tip *and* from ``used``
    (edges already living only in the replicas' overlays)."""
    present = durable_tip_pairs(fleet) | used
    picked: List[Tuple[int, int]] = []
    for u in range(64):
        for v in range(64):
            if u != v and (u, v) not in present:
                picked.append((u, v))
                if len(picked) == k:
                    return picked
    raise AssertionError("graph too dense for fresh edges")


def reference_tip(fleet, live_pairs, algorithm, source, weight_fn):
    graph = CSRGraph.from_edge_set(
        EdgeSet.from_pairs(sorted(live_pairs)), 64, weight_fn=weight_fn,
    )
    return static_compute(
        graph, get_algorithm(algorithm), source, track_parents=True,
    ).values


class TestUpdateFanout:
    def test_update_reaches_every_replica(self, fleet):
        (u, v) = fresh_edges(fleet, 1, set())[0]
        with fleet.client() as client:
            receipt = client.update("insert", u, v)
            status = client.status()
        assert receipt["replicas"] == 3
        assert receipt["overlay_depth"] == 1
        assert receipt["tip_version"] == 4
        assert status["fleet"]["fleet_overlay_depth"] == 1
        assert sorted(status["fleet"]["rotation"]) == [
            "replica-0", "replica-1", "replica-2",
        ]

    def test_queries_see_the_update_on_any_owner(self, fleet, fleet_weights):
        (u, v) = fresh_edges(fleet, 1, set())[0]
        live = durable_tip_pairs(fleet) | {(u, v)}
        with fleet.client() as client:
            client.update("insert", u, v)
            # Different sources hash to different replicas; each owner
            # must answer from its own patched overlay, identically.
            for source in (0, 1, 2, 3):
                response = client.query("SSSP", source)
                assert response["livetip_seq"] == 1
                assert_values_equal(
                    response["values"][-1],
                    reference_tip(fleet, live, "SSSP", source,
                                  fleet_weights),
                    f"fleet tip source {source}",
                )

    def test_deterministic_refusal_passes_through(self, fleet):
        (u, v) = sorted(durable_tip_pairs(fleet))[0]
        with fleet.client() as client:
            response = client.request({"op": "update", "kind": "insert",
                                       "edge": [int(u), int(v)]})
            status = client.status()
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"
        # Unanimous refusal: nobody applied, nobody is quarantined.
        assert sorted(status["fleet"]["rotation"]) == [
            "replica-0", "replica-1", "replica-2",
        ]

    def test_explicit_compact_folds_the_whole_fleet(self, fleet):
        edges = fresh_edges(fleet, 2, set())
        with fleet.client() as client:
            for u, v in edges:
                client.update("insert", u, v)
            receipt = client.update("compact")
            status = client.status()
        assert receipt["replicas"] == 3
        assert receipt["compacted"] is True
        assert receipt["updates_folded"] == 2
        assert receipt["tip_version"] == 5
        assert receipt["overlay_depth"] == 0
        assert status["fleet"]["fleet_version"] == 5
        assert status["fleet"]["fleet_overlay_depth"] == 0
        # The fold is durable and identical on every replica's disk.
        tips = {
            name: SnapshotStore(replica.store_dir).load().snapshot_edges(-1)
            for name, replica in fleet.replicas.items()
        }
        assert tips["replica-0"] == tips["replica-1"] == tips["replica-2"]
        for u, v in edges:
            assert (u, v) in tips["replica-0"]


class TestRollingRestart:
    def test_restart_flushes_pending_updates(self, fleet):
        edges = fresh_edges(fleet, 2, set())
        with fleet.client() as client:
            for u, v in edges:
                client.update("insert", u, v)
            assert client.status()["fleet"]["fleet_overlay_depth"] == 2
        report = fleet.restart_replica("replica-0")
        assert report["tip"] == 5  # the flush folded version 5
        with fleet.client() as client:
            status = client.status()
        assert status["fleet"]["fleet_version"] == 5
        assert status["fleet"]["fleet_overlay_depth"] == 0
        assert sorted(status["fleet"]["rotation"]) == [
            "replica-0", "replica-1", "replica-2",
        ]
        # Acknowledged updates survived the restart, now durably.
        for u, v in edges:
            assert (u, v) in durable_tip_pairs(fleet, "replica-0")

    def test_receipts_stay_consecutive_across_a_rolling_restart(self, fleet):
        used: Set[Tuple[int, int]] = set()
        versions = []
        with fleet.client() as client:
            for u, v in fresh_edges(fleet, 2, used):
                used.add((u, v))
                versions.append(client.update("insert", u, v)["tip_version"])
        for report in fleet.rolling_restart():
            versions.append(report["tip"])
        with fleet.client() as client:
            for u, v in fresh_edges(fleet, 2, used):
                used.add((u, v))
                receipt = client.update("insert", u, v)
                versions.append(receipt["tip_version"])
            assert receipt["replicas"] == 3
            fold = client.update("compact")
        # Updates at tip 4, one flush-fold to 5, restarts hold at 5,
        # post-restart updates still 5, final fold lands 6: the version
        # stream never skips and never rewinds.
        assert versions == [4, 4, 5, 5, 5, 5, 5]
        assert fold["tip_version"] == 6
        tips = {
            name: SnapshotStore(replica.store_dir).load().snapshot_edges(-1)
            for name, replica in fleet.replicas.items()
        }
        assert tips["replica-0"] == tips["replica-1"] == tips["replica-2"]
        for u, v in used:
            assert (u, v) in tips["replica-0"]


@pytest.mark.chaos
def test_updates_racing_a_rolling_restart(fleet):
    """The storm: a writer streams updates while every replica is
    gracefully restarted in turn.  Conservation: every *acknowledged*
    update is durably present on all three replicas afterwards, and
    nobody ends the storm quarantined."""
    script = fresh_edges(fleet, 16, set())
    acknowledged: List[Tuple[int, int]] = []
    errors: List[BaseException] = []
    started = threading.Event()

    def writer():
        try:
            with fleet.client(overload_retries=4) as client:
                for edge in script:
                    started.set()
                    for attempt in range(8):
                        try:
                            client.update("insert", *edge)
                            acknowledged.append(edge)
                            break
                        except ProtocolError:
                            # An applied-but-unacked insert (the ack lost
                            # to a dropped connection) resurfaces as an
                            # "already present" refusal on retry: the
                            # fleet has it — count it acknowledged.
                            acknowledged.append(edge)
                            break
                        except ServiceError:
                            time.sleep(0.05)  # rotation churn mid-restart
                    else:
                        return  # router unreachable: stop the stream
                    time.sleep(0.01)
        except BaseException as exc:
            errors.append(exc)

    thread = threading.Thread(target=writer, name="fleet-updater")
    thread.start()
    started.wait(timeout=10)
    reports = fleet.rolling_restart()
    thread.join(timeout=60)
    assert not thread.is_alive()
    assert not errors, errors
    assert len(reports) == 3
    with fleet.client() as client:
        client.update("compact")
        status = client.status()
    assert sorted(status["fleet"]["rotation"]) == [
        "replica-0", "replica-1", "replica-2",
    ]
    assert status["fleet"]["fleet_overlay_depth"] == 0
    tips = {
        name: SnapshotStore(replica.store_dir).load().snapshot_edges(-1)
        for name, replica in fleet.replicas.items()
    }
    assert tips["replica-0"] == tips["replica-1"] == tips["replica-2"]
    assert len(acknowledged) > 0
    for edge in acknowledged:
        assert edge in tips["replica-0"], f"acknowledged {edge} lost"
