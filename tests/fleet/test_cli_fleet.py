"""CLI rendering of live status for single services and fleet routers."""

from __future__ import annotations

import pytest

from repro.cli import main

pytestmark = [pytest.mark.service, pytest.mark.fleet]


class TestInfoConnect:
    def test_replica_status_renders_breakers_and_admission(
        self, fleet, capsys
    ):
        replica = fleet.replicas["replica-0"]
        address = f"{fleet.host}:{replica.port}"
        assert main(["info", "--connect", address]) == 0
        out = capsys.readouterr().out
        assert f"status {address}" in out
        assert "live, ready" in out
        assert "circuit breakers" in out
        # Each per-path breaker row shows its re-probe countdown.
        assert "planner" in out and "retry after" in out
        assert "admission" in out
        assert "in rotation" not in out  # a lone replica is not a fleet

    def test_router_status_renders_the_rotation_table(self, fleet, capsys):
        address = f"{fleet.host}:{fleet.router_port}"
        assert main(["info", "--connect", address]) == 0
        out = capsys.readouterr().out
        assert "fleet (tip 4, 3 in rotation)" in out
        for name in ("replica-0", "replica-1", "replica-2"):
            assert name in out
        assert "ready" in out

    def test_json_stays_machine_readable(self, fleet, capsys):
        import json

        address = f"{fleet.host}:{fleet.router_port}"
        assert main(["info", "--json", "--connect", address]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fleet"]["fleet_version"] == 4

    def test_ejected_replica_shows_its_reason(self, fleet, capsys):
        fleet.router_runner.eject("replica-1", "operator")
        address = f"{fleet.host}:{fleet.router_port}"
        assert main(["info", "--connect", address]) == 0
        out = capsys.readouterr().out
        assert "2 in rotation" in out
        assert "unhealthy" in out
        assert "operator" in out
        fleet.router_runner.probe()


class TestRouteParser:
    def test_route_requires_a_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["route"])
