"""Fleet chaos: a storm with a replica kill, a hang, and a partition.

The single-service chaos harness (``tests/service/test_chaos.py``)
proves one replica conserves requests under overload.  This suite
points the same storm at a 3-replica fleet and breaks the fleet
itself mid-run:

* ``replica-0`` is **killed** (non-graceful stop — in-flight work dies);
* ``replica-1`` is **partitioned** from the router (every router→replica
  call fails with an injected wire fault after the first few);
* queries **hang** for a while (injected execution latency holds the
  replicas' tight admission slots, forcing queueing and shedding).

The assertions are fleet-level conservation laws:

* every storm request is answered exactly once or explicitly shed —
  failover never hangs a client and never double-answers;
* fleet ingest receipts stay strictly consecutive even while fan-out
  legs die (nothing lost, nothing double-applied);
* the partitioned replica leaves rotation rather than serving stale
  answers, and only a supervisor resync brings it back;
* after the storm heals, every replica's answers are bit-identical to
  a from-scratch offline ``WorkSharingEvaluator`` on the final store;
* the ejections, failovers, and rebalances surface in the metrics
  export.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults, obs
from repro.evolving.store import SnapshotStore
from repro.resilience import RetryPolicy
from repro.service import AdmissionPolicy, ServiceConfig
from repro.fleet import FleetSupervisor
from repro.testing import reset_observability

from tests.conftest import assert_values_equal
from tests.fleet.conftest import fleet_batch
from tests.service.test_chaos import StormClient
from tests.service.test_server import offline_values

pytestmark = [pytest.mark.service, pytest.mark.chaos, pytest.mark.fleet]

N_CLIENTS = 24
N_INGESTS = 4
SEED = 4242


@pytest.fixture
def obs_runtime(tmp_path):
    runtime = obs.configure(sample_rate=1.0,
                            span_sink=tmp_path / "spans.jsonl")
    yield runtime
    reset_observability()


def replica_config(name: str) -> ServiceConfig:
    """Deliberately tight per-replica capacity so the storm must shed."""
    return ServiceConfig(
        request_timeout=10.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.005,
                          multiplier=2.0, max_delay=0.02,
                          retry_on=(OSError,)),
        query_admission=AdmissionPolicy(max_concurrent=2, max_queue=2,
                                        queue_timeout=0.1),
        ingest_admission=AdmissionPolicy(max_concurrent=1, max_queue=8,
                                         queue_timeout=5.0),
        breaker_failure_threshold=3,
        breaker_reset_timeout=0.2,
    )


class FleetIngester(threading.Thread):
    """Like the chaos Ingester, but each batch is derived from the
    survivor replica's on-disk store — the one store guaranteed to
    hold the fleet tip throughout the storm."""

    def __init__(self, supervisor, count, donor):
        super().__init__(name="fleet-storm-ingester")
        self.supervisor = supervisor
        self.count = count
        self.donor = donor
        self.receipts = []
        self.error = None

    def run(self):
        try:
            with self.supervisor.client(timeout=30) as client:
                for _ in range(self.count):
                    additions, deletions = fleet_batch(
                        self.supervisor, donor=self.donor
                    )
                    self.receipts.append(
                        client.ingest(additions=additions,
                                      deletions=deletions)
                    )
        except BaseException as exc:
            self.error = exc


class TestFleetStorm:
    def test_storm_with_kill_hang_and_partition(
        self, tmp_path, base_store, fleet_weights, obs_runtime
    ):
        plan = faults.FaultPlan(seed=SEED)
        # Hang: the first 6 queries to reach any replica's execution
        # path hold their admission slots for 150ms — the burst queues
        # and sheds behind them.
        plan.delay_service(0.15, match="query:*", times=6)
        # Partition: after its first 4 router→replica calls, every
        # wire to replica-1 eats the request, forever.
        plan.fail_service(index=4, match="route:replica-1:*", times=9999)
        # And two transport-level stalls on the survivor, so the
        # router's own forwarding path sees latency too.
        plan.delay_service(0.1, match="route:replica-2:query", times=2)
        offsets = faults.burst_offsets(N_CLIENTS, spread=0.05, seed=SEED)

        supervisor = FleetSupervisor(
            base_store.directory, tmp_path / "fleet",
            replicas=3, weight_fn=fleet_weights,
            service_config=replica_config,
        )
        with supervisor as fleet:
            clients = [
                StormClient(fleet.router_port, source, offset)
                for source, offset in zip(range(N_CLIENTS), offsets)
            ]
            ingester = FleetIngester(fleet, N_INGESTS, donor="replica-2")
            with plan.active():
                ingester.start()
                for client in clients:
                    client.start()
                # Kill replica-0 while the burst is still arriving:
                # its in-flight requests die on the wire and must be
                # answered by someone else.
                time.sleep(0.08)
                fleet.kill_replica("replica-0")
                for client in clients:
                    client.join(timeout=30)
                ingester.join(timeout=30)

            # Conservation: every thread came back, every request was
            # answered exactly once or explicitly shed.
            assert not any(c.is_alive() for c in clients)
            assert not ingester.is_alive()
            assert [c for c in clients if c.error] == []
            assert ingester.error is None
            answered = [c for c in clients if c.response is not None]
            shed = [c for c in clients if c.shed is not None]
            assert len(answered) + len(shed) == N_CLIENTS
            assert answered and shed
            assert all(s.shed.retry_after_ms >= 0 for s in shed)

            status = fleet.fleet_status()
            info = status["fleet"]
            # Each storm query entered the router exactly once —
            # failovers retried *forwards*, never the client request.
            assert status["server"]["queries"] == N_CLIENTS
            assert status["server"]["failovers"] >= 1
            assert status["server"]["ejections"] >= 2

            # The broken replicas left rotation; the survivor carried.
            assert "replica-0" not in info["rotation"]
            assert "replica-1" not in info["rotation"]
            assert "replica-2" in info["rotation"]
            assert info["replicas"]["replica-2"]["state"] == "ready"

            # No lost or duplicated ingest: strictly consecutive fleet
            # receipts even while fan-out legs were dying.
            versions = [r["version"] for r in ingester.receipts]
            assert len(versions) == N_INGESTS
            assert versions == list(range(versions[0],
                                          versions[0] + N_INGESTS))
            assert info["fleet_version"] == versions[-1]

            # -- heal ---------------------------------------------------
            # The kill left a cold store: recover restarts + resyncs.
            report = fleet.recover_replica("replica-0")
            assert report["tip"] == info["fleet_version"]
            # The partition left a stale replica: a probe alone must
            # NOT restore it if it missed batches — only resync may.
            verdicts = fleet.router_runner.probe()
            if verdicts["replica-1"] != "ready":
                tip = fleet.resync("replica-1")
                fleet.router_runner.restore("replica-1", version=tip)

            healed = fleet.fleet_status()["fleet"]
            assert healed["rotation"] == [
                "replica-0", "replica-1", "replica-2",
            ]
            for snapshot in healed["replicas"].values():
                assert snapshot["version"] == healed["fleet_version"]

            # Post-storm answers are bit-identical to a from-scratch
            # offline evaluation — on EVERY replica, asked directly.
            reference_store = SnapshotStore(
                fleet.replicas["replica-2"].store_dir
            )
            last = reference_store.num_snapshots - 1
            for algorithm, source in (("SSSP", 0), ("BFS", 3)):
                expected = offline_values(
                    reference_store, fleet_weights, algorithm, source,
                    0, last,
                )
                for name in fleet.replicas:
                    with fleet.replica_client(name) as probe:
                        live = probe.query(algorithm, source)
                    assert_values_equal(live["values"], expected)

            # The storm is visible in the metrics export.
            export = obs_runtime.registry.render_prometheus()
            assert 'repro_fleet_requests_total{op="query"}' in export
            assert 'repro_fleet_requests_total{op="ingest"}' in export
            failovers = [
                line for line in export.splitlines()
                if line.startswith("repro_fleet_failover_total")
            ]
            assert failovers
            assert float(failovers[0].rsplit(" ", 1)[1]) >= 1
            assert 'repro_fleet_ejections_total{' in export
            assert 'repro_fleet_replica_up{replica="replica-2"} 1' in export
