"""Router behaviour: affinity, fan-out receipts, failover, quarantine."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import FleetError
from repro.evolving.store import SnapshotStore
from repro.fleet import ConsistentHashRing
from repro.graph.edgeset import decode_edges

from tests.fleet.conftest import fleet_batch, pairs
from tests.service.conftest import valid_batch

pytestmark = [pytest.mark.service, pytest.mark.fleet]


def absent_pairs(store):
    """Every (u, v) edge absent from the store's tip, in scan order."""
    evolving = store.load()
    tip = evolving.snapshot_edges(evolving.num_snapshots - 1)
    present = set(zip(*(arr.tolist() for arr in decode_edges(tip.codes))))
    n = store.num_vertices
    return [(u, v) for u in range(n) for v in range(n)
            if u != v and (u, v) not in present]


class TestBasics:
    def test_ping_and_status_shape(self, fleet):
        with fleet.client() as client:
            assert client.ping()
            status = client.status()
        info = status["fleet"]
        assert sorted(info["replicas"]) == [
            "replica-0", "replica-1", "replica-2",
        ]
        assert info["rotation"] == ["replica-0", "replica-1", "replica-2"]
        assert info["fleet_version"] == 4  # 5 snapshots -> tip version 4
        for snapshot in info["replicas"].values():
            assert snapshot["state"] == "ready"
            assert snapshot["version"] == 4
            assert snapshot["breaker"]["state"] == "closed"
            assert "retry_after" in snapshot["breaker"]
        assert status["lifecycle"] == {
            "live": True, "ready": True, "draining": False,
        }

    def test_unknown_replica_raises(self, fleet):
        with pytest.raises(FleetError):
            fleet.router_runner.restore("nope")


class TestQueryAffinity:
    def test_routing_matches_the_ring(self, fleet):
        """The router's placement is exactly the documented hash ring."""
        ring = ConsistentHashRing(
            ["replica-0", "replica-1", "replica-2"],
            vnodes=fleet.router_runner.router.config.vnodes,
        )
        with fleet.client() as client:
            for source in range(12):
                response = client.query("SSSP", source)
                assert response["replica"] == ring.owner(source)

    def test_affinity_turns_repeats_into_cache_hits(self, fleet):
        with fleet.client() as client:
            first = client.query("SSSP", 5)
            repeat = client.query("SSSP", 5)
        assert first["replica"] == repeat["replica"]
        assert repeat["from_cache"] is True
        for a, b in zip(first["values"], repeat["values"]):
            assert np.array_equal(a, b)


class TestIngestFanOut:
    def test_every_replica_applies_the_batch(self, fleet):
        additions, deletions = fleet_batch(fleet)
        with fleet.client() as client:
            receipt = client.ingest(additions=additions, deletions=deletions)
        assert receipt["version"] == 5
        assert receipt["fleet_version"] == 5
        assert receipt["replicas"] == 3
        for name in fleet.replicas:
            assert fleet.tip(name) == 5

    def test_receipts_stay_consecutive_across_batches(self, fleet):
        versions = []
        with fleet.client() as client:
            for _ in range(3):
                additions, deletions = fleet_batch(fleet)
                versions.append(
                    client.ingest(additions=additions,
                                  deletions=deletions)["version"]
                )
        assert versions == [5, 6, 7]


class TestFailover:
    def test_query_fails_over_when_the_owner_dies(self, fleet):
        source = 0
        with fleet.client() as client:
            owner = client.query("SSSP", source)["replica"]
            # Kill the owner *without telling the router* — it must
            # discover the failure from the connection itself.
            replica = fleet.replicas[owner]
            runner, replica.runner = replica.runner, None
            runner.stop()
            runner.state.close()
            response = client.query("SSSP", source)
            status = client.status()
        assert response["ok"] is True
        assert response["replica"] != owner
        assert response["failovers"] >= 1
        info = status["fleet"]
        assert info["replicas"][owner]["state"] == "unhealthy"
        assert owner not in info["rotation"]
        assert status["server"]["failovers"] >= 1
        assert status["server"]["ejections"] >= 1

    def test_probe_restores_an_ejected_healthy_replica(self, fleet):
        fleet.router_runner.eject("replica-1", "operator")
        with fleet.client() as client:
            assert "replica-1" not in client.status()["fleet"]["rotation"]
        verdicts = fleet.router_runner.probe()
        assert verdicts["replica-1"] == "ready"
        with fleet.client() as client:
            assert "replica-1" in client.status()["fleet"]["rotation"]

    def test_no_rotation_answers_unavailable(self, fleet):
        for name in fleet.replicas:
            fleet.router_runner.eject(name, "operator")
        with fleet.client() as client:
            response = client.request({"op": "query", "algorithm": "SSSP",
                                       "source": 0})
        assert response["ok"] is False
        assert response["unavailable"] is True
        assert response["error_type"] == "ServiceUnavailableError"
        fleet.router_runner.probe()
        with fleet.client() as client:
            assert len(client.status()["fleet"]["rotation"]) == 3


class TestReceiptConsistency:
    def test_diverging_receipt_quarantines_the_replica(self, fleet):
        # Poison replica-2 behind the router's back: append a batch the
        # rest of the fleet never saw (the *last* absent edge, so the
        # next fleet batch — built from the *first* absent edges — is
        # still valid against its tip and produces a receipt one ahead).
        rogue_store = SnapshotStore(fleet.replicas["replica-2"].store_dir)
        rogue_edge = absent_pairs(rogue_store)[-1]
        with fleet.replica_client("replica-2") as direct:
            direct.ingest(additions=[list(rogue_edge)])
        assert fleet.tip("replica-2") == 5

        clean = SnapshotStore(fleet.replicas["replica-0"].store_dir)
        batch = valid_batch(clean, n_add=2, n_del=1)
        with fleet.client() as client:
            receipt = client.ingest(additions=pairs(batch.additions),
                                    deletions=pairs(batch.deletions))
            status = client.status()

        # The honest majority agreed on version 5; replica-2 reported 6.
        assert receipt["version"] == 5
        assert receipt["replicas"] == 2
        info = status["fleet"]
        assert info["replicas"]["replica-2"]["state"] == "quarantined"
        assert info["replicas"]["replica-2"]["reason"] == "divergence"
        assert info["rotation"] == ["replica-0", "replica-1"]
        assert status["server"]["receipt_divergences"] == 1

        # A probe must NOT restore it: its history diverged.
        verdicts = fleet.router_runner.probe()
        assert verdicts["replica-2"] == "quarantined"

        # resync refuses (the replica is ahead); rebuild reconciles.
        with pytest.raises(FleetError):
            fleet.resync("replica-2")
        tip = fleet.rebuild_replica("replica-2")
        assert tip == 5
        with fleet.client() as client:
            assert client.status()["fleet"]["rotation"] == [
                "replica-0", "replica-1", "replica-2",
            ]

    def test_missed_batch_quarantines_and_resync_heals(self, fleet):
        # Stop replica-1 without telling the router; the next fan-out
        # leg fails, so the replica missed a batch the fleet applied.
        replica = fleet.replicas["replica-1"]
        runner, replica.runner = replica.runner, None
        runner.stop()
        runner.state.close()
        additions, deletions = fleet_batch(fleet)
        with fleet.client() as client:
            receipt = client.ingest(additions=additions, deletions=deletions)
            status = client.status()
        assert receipt["replicas"] == 2
        assert receipt["fleet_version"] == 5
        snapshot = status["fleet"]["replicas"]["replica-1"]
        assert snapshot["state"] == "quarantined"
        assert snapshot["reason"] == "ingest_failed"

        report = fleet.recover_replica("replica-1")
        assert report["tip"] == 5
        assert fleet.tip("replica-1") == 5
        with fleet.client() as client:
            assert "replica-1" in client.status()["fleet"]["rotation"]


class TestDeadline:
    def test_client_timeout_is_honoured_across_failovers(self, fleet):
        # With a microscopic budget the router must answer (an error)
        # rather than retry forever against ejected replicas.
        for name in ("replica-0", "replica-1"):
            replica = fleet.replicas[name]
            runner, replica.runner = replica.runner, None
            runner.stop()
            runner.state.close()
        with fleet.client() as client:
            response = client.request({
                "op": "query", "algorithm": "SSSP", "source": 0,
                "timeout_ms": 1,
            })
        # The budget died somewhere along the failover chain — at the
        # router, at the surviving replica's admission gate, or in its
        # executor — but it *answered*, promptly, instead of burning
        # retries against the dead owners.
        assert response["ok"] is False
        assert response["error_type"] in (
            "DeadlineExceededError", "ServiceUnavailableError",
            "ServiceOverloadedError",
        )


class TestProbeInterval:
    def test_canonical_name_wins_over_deprecated_spelling(self):
        from repro.fleet.router import RouterConfig

        config = RouterConfig(probe_interval_s=0.25, health_interval=5.0)
        assert config.probe_interval() == 0.25
        assert RouterConfig(health_interval=5.0).probe_interval() == 5.0
        assert RouterConfig().probe_interval() is None

    def test_jitter_knobs_have_safe_defaults(self):
        from repro.fleet.router import RouterConfig

        config = RouterConfig()
        assert 0.0 <= config.probe_jitter < 1.0
        # None = derive from the router's port, which already differs
        # per router, so co-started routers drift apart.
        assert config.probe_jitter_seed is None

    def test_probe_loop_runs_at_the_configured_interval(
        self, tmp_path, base_store, fleet_weights
    ):
        from repro.fleet import FleetSupervisor
        from repro.fleet.router import RouterConfig

        supervisor = FleetSupervisor(
            base_store.directory, tmp_path / "fleet",
            replicas=1, weight_fn=fleet_weights,
            router_config=RouterConfig(probe_interval_s=0.05,
                                       probe_jitter=0.2,
                                       probe_jitter_seed=9),
        )
        with supervisor as fleet:
            deadline = time.monotonic() + 10.0
            probes = 0
            while time.monotonic() < deadline:
                with fleet.client() as client:
                    probes = client.status()["server"]["probes"]
                if probes >= 2:
                    break
                time.sleep(0.05)
        assert probes >= 2


class TestMembership:
    def test_added_replica_joins_quarantined_until_restored(self, fleet):
        replica = fleet.replicas["replica-0"]
        fleet.router_runner.add_replica("replica-9", "127.0.0.1",
                                        replica.port)
        with fleet.client() as client:
            info = client.status()["fleet"]
        doc = info["replicas"]["replica-9"]
        assert doc["state"] == "quarantined"
        assert doc["reason"] == "provisioning"
        # Not on the ring: no traffic routes to it until a resync
        # proves it holds the fleet tip and restore() admits it.
        assert "replica-9" not in info["rotation"]
        fleet.router_runner.remove_replica("replica-9")

    def test_duplicate_add_raises(self, fleet):
        with pytest.raises(FleetError):
            fleet.router_runner.add_replica(
                "replica-0", "127.0.0.1", 1,
            )

    def test_remove_replica_drops_it_from_rotation(self, fleet):
        fleet.router_runner.remove_replica("replica-2")
        with fleet.client() as client:
            info = client.status()["fleet"]
        assert "replica-2" not in info["replicas"]
        assert info["rotation"] == ["replica-0", "replica-1"]
        with pytest.raises(FleetError):
            fleet.router_runner.remove_replica("replica-2")
