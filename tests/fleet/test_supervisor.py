"""Supervisor workflows: rolling restarts, drain-vs-ingest, resync."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ServiceOverloadedError
from repro.evolving.store import SnapshotStore

from tests.fleet.conftest import fleet_batch

pytestmark = [pytest.mark.service, pytest.mark.fleet]


class QueryLoop(threading.Thread):
    """Issues queries through the router until told to stop."""

    def __init__(self, supervisor, sources, stop_event):
        super().__init__(name=f"fleet-load-{sources[0]}")
        self.supervisor = supervisor
        self.sources = sources
        self.stop_event = stop_event
        self.answered = 0
        self.shed = 0
        self.errors = []

    def run(self):
        try:
            with self.supervisor.client(overload_retries=0) as client:
                while not self.stop_event.is_set():
                    for source in self.sources:
                        try:
                            response = client.query("SSSP", source)
                        except ServiceOverloadedError:
                            self.shed += 1
                            continue
                        assert response["ok"]
                        self.answered += 1
        except BaseException as exc:  # anything else fails the test
            self.errors.append(exc)


class IngestLoop(threading.Thread):
    """Applies ``count`` sequential batches through the router."""

    def __init__(self, supervisor, count, donor="replica-2", pause=0.02):
        super().__init__(name="fleet-ingester")
        self.supervisor = supervisor
        self.count = count
        self.donor = donor
        self.pause = pause
        self.receipts = []
        self.error = None

    def run(self):
        try:
            with self.supervisor.client() as client:
                for _ in range(self.count):
                    additions, deletions = fleet_batch(
                        self.supervisor, donor=self.donor
                    )
                    self.receipts.append(
                        client.ingest(additions=additions,
                                      deletions=deletions)
                    )
                    time.sleep(self.pause)
        except BaseException as exc:
            self.error = exc


class TestRollingRestart:
    def test_zero_failed_requests_under_continuous_load(self, fleet):
        """The acceptance bar: roll all 3 replicas under query load —
        every request is answered (or explicitly shed), none fail."""
        stop = threading.Event()
        loops = [
            QueryLoop(fleet, list(range(lo, lo + 4)), stop)
            for lo in (0, 4, 8)
        ]
        for loop in loops:
            loop.start()
        try:
            reports = fleet.rolling_restart()
        finally:
            stop.set()
            for loop in loops:
                loop.join(timeout=30)
        assert not any(loop.is_alive() for loop in loops)
        for loop in loops:
            assert loop.errors == []
            assert loop.answered > 0
        assert [r["replica"] for r in reports] == [
            "replica-0", "replica-1", "replica-2",
        ]
        assert all(r["drain"]["drained"] for r in reports)
        assert all(r["tip"] == 4 for r in reports)
        with fleet.client() as client:
            status = client.status()
        assert status["fleet"]["rotation"] == [
            "replica-0", "replica-1", "replica-2",
        ]
        assert status["lifecycle"]["ready"] is True

    def test_rolling_restart_preserves_answers(self, fleet, fleet_weights):
        with fleet.client() as client:
            before = client.query("SSSP", 3)["values"]
        fleet.rolling_restart()
        answers = {}
        for name in fleet.replicas:
            with fleet.replica_client(name) as direct:
                answers[name] = direct.query("SSSP", 3)["values"]
        for name, values in answers.items():
            assert len(values) == len(before)
            for got, want in zip(values, before):
                assert np.array_equal(got, want), name


class TestDrainRacesIngest:
    def test_receipts_stay_consecutive_across_drain_restart_resync(
        self, fleet
    ):
        """Satellite: drain one replica while ingests flow through the
        router.  The drained replica misses batches, resync replays
        them, and the fleet's receipt chain never skips or repeats."""
        ingester = IngestLoop(fleet, count=4, donor="replica-2")
        ingester.start()
        report = fleet.restart_replica("replica-0")
        ingester.join(timeout=30)
        assert not ingester.is_alive()
        assert ingester.error is None
        assert report["drain"]["drained"] is True

        versions = [r["version"] for r in ingester.receipts]
        assert len(versions) == 4
        # Strictly consecutive: nothing lost, nothing double-applied.
        assert versions == list(range(versions[0], versions[0] + 4))
        fleet_tip = versions[-1]

        # The restarted replica caught up (the restart's resync landed
        # at whatever tip the fleet had then; later batches fanned out
        # to it normally once restored).
        for name in fleet.replicas:
            assert fleet.tip(name) == fleet_tip
        with fleet.client() as client:
            status = client.status()
        assert status["fleet"]["fleet_version"] == fleet_tip
        assert status["fleet"]["rotation"] == [
            "replica-0", "replica-1", "replica-2",
        ]

    def test_restarted_replica_answers_like_the_others(self, fleet):
        ingester = IngestLoop(fleet, count=3, donor="replica-2")
        ingester.start()
        fleet.restart_replica("replica-0")
        ingester.join(timeout=30)
        assert ingester.error is None
        answers = {}
        for name in fleet.replicas:
            with fleet.replica_client(name) as direct:
                answers[name] = direct.query("BFS", 1)["values"]
        reference = answers["replica-2"]
        for name, values in answers.items():
            for got, want in zip(values, reference):
                assert np.array_equal(got, want), name


class TestKillAndRecover:
    def test_ingests_while_dead_are_replayed_on_recovery(self, fleet):
        fleet.kill_replica("replica-1")
        with fleet.client() as client:
            for _ in range(2):
                additions, deletions = fleet_batch(fleet)
                receipt = client.ingest(additions=additions,
                                        deletions=deletions)
                assert receipt["replicas"] == 2
        assert receipt["fleet_version"] == 6

        report = fleet.recover_replica("replica-1")
        assert report["tip"] == 6
        # The recovered store is byte-for-byte in agreement: same batch
        # count and same tip digest as the donor.
        recovered = SnapshotStore(fleet.replicas["replica-1"].store_dir)
        donor = SnapshotStore(fleet.replicas["replica-0"].store_dir)
        assert recovered.num_snapshots == donor.num_snapshots
        with fleet.client() as client:
            assert client.status()["fleet"]["rotation"] == [
                "replica-0", "replica-1", "replica-2",
            ]


class TestBoundedResync:
    def lag_replica(self, fleet, name="replica-1", batches=2):
        """Kill ``name``, advance the fleet past it, restart it cold —
        a running replica that is ``batches`` behind the tip."""
        fleet.kill_replica(name)
        with fleet.client() as client:
            for _ in range(batches):
                additions, deletions = fleet_batch(fleet)
                client.ingest(additions=additions, deletions=deletions)
        replica = fleet.replicas[name]
        fleet._start_replica(replica)
        fleet._retarget(name)
        return name

    def test_expired_deadline_surfaces_stalled_with_progress(self, fleet):
        from repro.errors import ResyncStalledError
        from repro.resilience import Deadline

        name = self.lag_replica(fleet, batches=2)
        with pytest.raises(ResyncStalledError) as excinfo:
            fleet.resync(name, deadline=Deadline.after(0.0))
        progress = excinfo.value.progress
        assert progress["replica"] == name
        assert progress["batches_replayed"] == 0
        assert progress["batches_missing"] == 2
        assert progress["tip"] == 4
        # Progress is durable: an unbounded resync resumes and lands.
        tip = fleet.resync(name)
        assert tip == 6
        fleet.router_runner.restore(name, version=tip)
        with fleet.client() as client:
            assert client.status()["fleet"]["rotation"] == [
                "replica-0", "replica-1", "replica-2",
            ]

    def test_tip_chase_is_bounded_by_max_rounds(self, fleet, monkeypatch):
        from repro.errors import FleetError, ResyncStalledError

        name = self.lag_replica(fleet, batches=1)
        # The fleet tip "advances" forever: every restore is refused.
        monkeypatch.setattr(
            fleet.router_runner, "restore",
            lambda *args, **kwargs: (_ for _ in ()).throw(
                FleetError("version mismatch: the tip moved")),
        )
        with pytest.raises(ResyncStalledError) as excinfo:
            fleet._resync_and_restore(name, max_rounds=3)
        progress = excinfo.value.progress
        assert progress["rounds_completed"] == 3
        assert progress["rounds_cap"] == 3
        assert progress["tip"] == 5
        assert progress["deadline_expired"] is False
        assert "the tip moved" in progress["last_refusal"]

    def test_resync_bounds_are_validated(self, tmp_path, base_store):
        from repro.errors import FleetError
        from repro.fleet import FleetSupervisor

        with pytest.raises(FleetError):
            FleetSupervisor(base_store.directory, tmp_path / "bad",
                            replicas=1, resync_max_rounds=0)


class TestElasticity:
    def test_provision_clones_resyncs_and_joins_rotation(self, fleet):
        report = fleet.provision_replica()
        assert report["replica"] == "replica-3"
        assert report["tip"] == 4
        with fleet.client() as client:
            status = client.status()
        assert status["fleet"]["rotation"] == [
            "replica-0", "replica-1", "replica-2", "replica-3",
        ]
        # The clone answers bit-identically to its donor.
        with fleet.replica_client("replica-3") as grown:
            values = grown.query("SSSP", 0)["values"]
        with fleet.replica_client(report["donor"]) as donor:
            expected = donor.query("SSSP", 0)["values"]
        for got, want in zip(values, expected):
            assert np.array_equal(got, want)

    def test_provision_failure_rolls_back_completely(self, fleet,
                                                     monkeypatch):
        from repro.errors import FleetError

        def boom(name, **kwargs):
            raise FleetError("injected: resync never converged")

        monkeypatch.setattr(fleet, "_resync_and_restore", boom)
        with pytest.raises(FleetError):
            fleet.provision_replica()
        # No half-configured membership anywhere: supervisor, router,
        # or disk.
        assert sorted(fleet.replicas) == [
            "replica-0", "replica-1", "replica-2",
        ]
        with fleet.client() as client:
            status = client.status()
        assert sorted(status["fleet"]["replicas"]) == [
            "replica-0", "replica-1", "replica-2",
        ]
        assert not (fleet.root / "replica-3").exists()
        # The burnt name is never reused: the next grow is replica-4.
        monkeypatch.undo()
        report = fleet.provision_replica()
        assert report["replica"] == "replica-4"

    def test_retire_defaults_to_the_youngest_and_refuses_the_last(
        self, fleet
    ):
        from repro.errors import FleetError

        report = fleet.retire_replica()
        assert report["replica"] == "replica-2"
        assert report["drain"]["drained"] is True
        assert sorted(fleet.replicas) == ["replica-0", "replica-1"]
        with fleet.client() as client:
            assert client.status()["fleet"]["rotation"] == [
                "replica-0", "replica-1",
            ]
        fleet.retire_replica()
        with pytest.raises(FleetError):
            fleet.retire_replica()

    def test_heal_rebuilds_a_diverged_replica(self, fleet):
        # Ingest directly into replica-1, bypassing the router: its
        # history is now ahead of the fleet's — divergence, not lag.
        additions, deletions = fleet_batch(fleet, donor="replica-1")
        with fleet.replica_client("replica-1") as direct:
            direct.ingest(additions=additions, deletions=deletions)
        report = fleet.heal_replica("replica-1")
        assert report["healed"] == "rebuild"
        assert report["tip"] == 4
        with fleet.client() as client:
            assert client.status()["fleet"]["rotation"] == [
                "replica-0", "replica-1", "replica-2",
            ]

    def test_heal_recovers_a_stopped_replica(self, fleet):
        fleet.kill_replica("replica-0")
        report = fleet.heal_replica("replica-0")
        assert report["healed"] == "recover"
        assert report["tip"] == 4
        assert fleet.replicas["replica-0"].running
