"""Fixtures for the fleet tests: a base store and a live 3-replica fleet."""

from __future__ import annotations

from typing import List

import pytest

from repro.evolving.generator import generate_evolving_graph
from repro.evolving.store import SnapshotStore
from repro.fleet import FleetSupervisor
from repro.graph.edgeset import decode_edges
from repro.graph.generators import rmat_edges
from repro.graph.weights import HashWeights

from tests.service.conftest import valid_batch


def pairs(edges) -> List[List[int]]:
    """An EdgeSet as the wire-format pair list."""
    sources, targets = decode_edges(edges.codes)
    return [[int(u), int(v)] for u, v in zip(sources.tolist(),
                                             targets.tolist())]


def fleet_batch(supervisor, donor: str = "replica-0"):
    """A batch valid against the fleet's current tip, as wire pairs.

    Derived from ``donor``'s on-disk store, which holds the fleet tip
    whenever that replica is in rotation.
    """
    batch = valid_batch(SnapshotStore(supervisor.replicas[donor].store_dir))
    return pairs(batch.additions), pairs(batch.deletions)


@pytest.fixture(scope="session")
def fleet_evolving():
    """Same shape as the service suite's graph: 64 vertices, 5 snapshots."""
    return generate_evolving_graph(
        num_vertices=64,
        base=rmat_edges(scale=6, num_edges=240, seed=5),
        num_snapshots=5,
        batch_size=16,
        readd_fraction=0.5,
        seed=11,
        name="fleet",
    )


@pytest.fixture
def base_store(tmp_path, fleet_evolving):
    return SnapshotStore.create(tmp_path / "base", fleet_evolving)


@pytest.fixture
def fleet_weights():
    return HashWeights(max_weight=8, seed=7)


@pytest.fixture
def fleet(tmp_path, base_store, fleet_weights):
    """A running 3-replica fleet behind one router."""
    supervisor = FleetSupervisor(
        base_store.directory, tmp_path / "fleet",
        replicas=3, weight_fn=fleet_weights,
    )
    with supervisor:
        yield supervisor
