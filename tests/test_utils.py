"""Tests for repro.utils."""

import time

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import PhaseTimer, Stopwatch, concat_ranges


class TestConcatRanges:
    def test_single_range(self):
        out = concat_ranges(np.array([2]), np.array([6]))
        assert out.tolist() == [2, 3, 4, 5]

    def test_multiple_ranges(self):
        out = concat_ranges(np.array([0, 5, 10]), np.array([2, 8, 11]))
        assert out.tolist() == [0, 1, 5, 6, 7, 10]

    def test_empty_input(self):
        out = concat_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out.size == 0

    def test_all_empty_ranges(self):
        out = concat_ranges(np.array([3, 7]), np.array([3, 7]))
        assert out.size == 0

    def test_mixed_empty_and_nonempty(self):
        out = concat_ranges(np.array([0, 4, 9]), np.array([0, 6, 9]))
        assert out.tolist() == [4, 5]

    def test_negative_length_treated_as_empty(self):
        out = concat_ranges(np.array([5, 0]), np.array([2, 3]))
        assert out.tolist() == [0, 1, 2]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            concat_ranges(np.array([0, 1]), np.array([2]))

    def test_dtype_is_int64(self):
        out = concat_ranges(np.array([0]), np.array([3]))
        assert out.dtype == np.int64

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 12)),
            min_size=0, max_size=10,
        )
    )
    def test_matches_naive(self, ranges):
        starts = np.array([a for a, _ in ranges], dtype=np.int64)
        stops = np.array([a + l for a, l in ranges], dtype=np.int64)
        expected = (
            np.concatenate([np.arange(a, b) for a, b in zip(starts, stops)])
            if len(ranges)
            else np.empty(0, dtype=np.int64)
        )
        got = concat_ranges(starts, stops)
        assert got.tolist() == expected.tolist()


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.002)
        with sw:
            time.sleep(0.002)
        assert sw.seconds >= 0.004
        assert sw.calls == 2

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.seconds == 0.0
        assert sw.calls == 0


class TestPhaseTimer:
    def test_phase_accumulation(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.001)
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.seconds("a") > 0
        assert timer.phases["a"].calls == 2
        assert set(timer.as_dict()) == {"a", "b"}

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().seconds("nope") == 0.0

    def test_total(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.001)
        assert timer.total() == pytest.approx(timer.seconds("a"))

    def test_merge(self):
        t1, t2 = PhaseTimer(), PhaseTimer()
        with t1.phase("a"):
            time.sleep(0.001)
        with t2.phase("a"):
            time.sleep(0.001)
        with t2.phase("b"):
            pass
        before = t1.seconds("a")
        t1.merge(t2)
        assert t1.seconds("a") > before
        assert "b" in t1.phases
