"""Tests for the benchmark workload builder."""

import pytest

from repro.bench.workloads import (
    PROFILES,
    WorkloadSpec,
    build_workload,
    pick_source,
)
from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet

CI_SPEC = WorkloadSpec(
    dataset="LJ", num_snapshots=4, batch_size=20, edge_scale=0.05, seed=1
)


class TestWorkloadSpec:
    def test_scaled_override(self):
        spec = CI_SPEC.scaled(dataset="DL", batch_size=10)
        assert spec.dataset == "DL"
        assert spec.batch_size == 10
        assert spec.num_snapshots == CI_SPEC.num_snapshots

    def test_profiles_exist(self):
        assert {"paper", "ci"} <= set(PROFILES)
        assert PROFILES["paper"].num_snapshots == 50
        assert PROFILES["paper"].batch_size == 75


class TestBuildWorkload:
    def test_builds_consistent_workload(self):
        workload = build_workload(CI_SPEC)
        assert workload.evolving.num_snapshots == 4
        assert workload.evolving.name == "LJ"
        assert 0 <= workload.source < workload.num_vertices
        for batch in workload.evolving.batches:
            assert batch.size == 20

    def test_deterministic(self):
        a = build_workload(CI_SPEC)
        b = build_workload(CI_SPEC)
        assert a.source == b.source
        for i in range(a.evolving.num_snapshots):
            assert a.evolving.snapshot_edges(i) == b.evolving.snapshot_edges(i)

    def test_source_never_loses_out_edges(self):
        workload = build_workload(CI_SPEC)
        for i in range(workload.evolving.num_snapshots):
            edges = workload.evolving.snapshot_edges(i)
            assert any(u == workload.source for u, _ in edges)

    def test_unknown_dataset(self):
        with pytest.raises(ReproError):
            build_workload(CI_SPEC.scaled(dataset="nope"))


def test_pick_source_is_max_degree():
    edges = EdgeSet.from_pairs([(2, 0), (2, 1), (2, 3), (0, 1)])
    csr = CSRGraph.from_edge_set(edges, 4)
    assert pick_source(csr) == 2
