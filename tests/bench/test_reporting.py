"""Tests for table and chart rendering."""

from repro.bench.reporting import (
    format_seconds,
    format_speedup,
    render_chart,
    render_markdown_table,
    render_table,
)


class TestFormat:
    def test_format_seconds_scales(self):
        assert format_seconds(0.0000005).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.5) == "2.500s"

    def test_format_speedup(self):
        assert format_speedup(3.14159) == "3.14x"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines share one width.
        assert len(lines[3]) == len(lines[4])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_markdown(self):
        text = render_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestRenderChart:
    def test_basic_structure(self):
        chart = render_chart(
            [1, 2, 3], {"ks": [1.0, 2.0, 3.0], "dh": [0.5, 1.0, 1.5]},
            title="demo", width=20, height=6,
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert "* ks" in lines[-1]
        assert "o dh" in lines[-1]
        # y-axis bounds rendered on first/last grid rows
        assert "3" in lines[1]
        assert "0" in lines[-4]

    def test_markers_placed(self):
        chart = render_chart([0, 10], {"s": [0.0, 5.0]}, width=11, height=5)
        grid_only = "\n".join(chart.splitlines()[:-1])  # drop the legend
        assert grid_only.count("*") == 2

    def test_extremes_land_inside(self):
        chart = render_chart(
            [0, 1], {"s": [0.0, 100.0]}, width=10, height=4
        )
        for line in chart.splitlines():
            assert len(line) < 10 + 30  # no runaway rows

    def test_empty_series(self):
        assert "(no data)" in render_chart([], {}, title="t")

    def test_constant_zero_series(self):
        chart = render_chart([1, 2], {"flat": [0.0, 0.0]}, width=8, height=4)
        assert "*" in chart

    def test_axis_note(self):
        chart = render_chart(
            [1, 2], {"s": [1, 2]}, y_label="sec", x_label="batch"
        )
        assert "[sec vs batch]" in chart
