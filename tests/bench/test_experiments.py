"""Smoke + shape tests for all experiment drivers at tiny scale.

These run every table/figure regenerator on a minute profile and check
the structural properties the paper's shapes rely on (columns present,
rows per combination, sane values).  The real shape checks at paper
scale are recorded in EXPERIMENTS.md via ``python -m repro.bench``.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_batch_scale,
    ablation_overlay,
    ablation_storage,
    ablation_scheduler,
    ablation_steiner,
    figure1,
    figure8,
    figure9,
    figure10,
    figure11,
    run_experiment,
    table4,
    table5,
)
from repro.bench.harness import profile_kwargs, run_all
from repro.bench.workloads import WorkloadSpec

TINY = WorkloadSpec(dataset="LJ", num_snapshots=4, batch_size=20,
                    edge_scale=0.05, seed=2)


class TestFigure1:
    def test_shape(self):
        result = figure1(
            dataset="LJ", batch_sizes=(20, 40), algorithms=("BFS",),
            edge_scale=0.05, repeats=1,
        )
        assert result.name == "figure1"
        assert len(result.rows) == 2
        for row in result.rows:
            record = dict(zip(result.headers, row))
            assert record["incr_add_s"] >= 0
            assert record["incr_del_s"] >= 0
            assert record["mut_del_s"] > 0


class TestTable4:
    def test_shape(self):
        result = table4(datasets=("LJ",), algorithms=("BFS", "SSSP"), spec=TINY)
        assert len(result.rows) == 2
        for row in result.rows:
            record = dict(zip(result.headers, row))
            assert record["kickstarter_s"] > 0
            assert record["dh_speedup"] > 0
            assert record["ws_speedup"] > 0

    def test_column_accessor(self):
        result = table4(datasets=("LJ",), algorithms=("BFS",), spec=TINY)
        assert result.column("graph") == ["LJ"]

    def test_render_and_markdown(self):
        result = table4(datasets=("LJ",), algorithms=("BFS",), spec=TINY)
        text = result.render()
        assert "Table 4" in text
        md = result.to_markdown()
        assert md.startswith("### Table 4")
        assert "| graph |" in md


class TestScalability:
    def test_figure8_shape(self):
        result = figure8(
            dataset="LJ", algorithms=("BFS",), snapshot_counts=(2, 4), spec=TINY
        )
        assert len(result.rows) == 2
        assert result.column("snapshots") == [2, 4]

    def test_figure9_shape(self):
        result = figure9(
            dataset="LJ", algorithms=("BFS",), sweep=((20, 4), (40, 2)), spec=TINY
        )
        assert len(result.rows) == 2
        assert result.column("batch") == [20, 40]

    def test_figure10_shape(self):
        result = figure10(
            dataset="LJ", algorithms=("BFS",), ratios=((15, 5), (5, 15)), spec=TINY
        )
        assert len(result.rows) == 2
        for row in result.rows:
            record = dict(zip(result.headers, row))
            assert record["dh_speedup"] > 0


class TestTable5:
    def test_shape(self):
        result = table5(datasets=("LJ",), algorithms=("BFS",), spec=TINY)
        record = dict(zip(result.headers, result.rows[0]))
        assert record["longest_hop_s"] > 0
        assert record["speedup"] > 0

    def test_with_pool(self):
        result = table5(
            datasets=("LJ",), algorithms=("BFS",), spec=TINY, use_pool=True
        )
        record = dict(zip(result.headers, result.rows[0]))
        assert record["pool_wall_s"] > 0


class TestFigure11:
    def test_shape(self):
        result = figure11(dataset="LJ", algorithms=("BFS",), spec=TINY)
        assert len(result.rows) == 2  # KS and CG rows
        ks = dict(zip(result.headers, result.rows[0]))
        cg = dict(zip(result.headers, result.rows[1]))
        assert ks["system"] == "KS"
        assert cg["system"] == "CG"
        # CommonGraph eliminates mutation and incremental deletion.
        assert cg["incr_del_s"] == 0.0
        assert cg["mut_add_s"] == 0.0
        assert cg["mut_del_s"] == 0.0
        assert ks["mut_del_s"] > 0.0


class TestAblations:
    def test_steiner(self):
        result = ablation_steiner(num_snapshots=4, batch_size=20, edge_scale=0.05)
        strategies = result.column("strategy")
        assert "direct-hop" in strategies
        costs = dict(zip(strategies, result.column("cost_additions")))
        assert costs["greedy + bypass"] <= costs["direct-hop"]
        assert costs["exact + bypass"] <= costs["greedy + bypass"]
        assert costs["greedy (no bypass)"] == costs["greedy + bypass"]

    def test_overlay(self):
        result = ablation_overlay(spec=TINY)
        assert len(result.rows) == 2

    def test_scheduler(self):
        result = ablation_scheduler(spec=TINY)
        assert result.column("mode") == ["sync", "async", "auto"]

    def test_storage(self):
        result = ablation_storage(datasets=("LJ",), spec=TINY)
        record = dict(zip(result.headers, result.rows[0]))
        naive = record["per-snapshot CSRs"]
        direct = record["common+surpluses"]
        shared = record["common+schedule batches"]
        assert shared <= direct <= naive
        # With 4 snapshots the naive storage is ~4x a snapshot's edges.
        assert naive > 3 * direct

    def test_batch_scale(self):
        result = ablation_batch_scale(
            dataset="LJ", batch_sizes=(10, 20), spec=TINY
        )
        assert result.column("batch") == [10, 20]
        for row in result.rows:
            record = dict(zip(result.headers, row))
            assert record["ws_additions"] <= record["dh_additions"]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "figure1", "table4", "figure8", "figure9", "figure10",
            "table5", "figure11", "ablation_steiner", "ablation_overlay",
            "ablation_scheduler", "ablation_batch_scale",
            "ablation_storage",
        }

    def test_run_experiment_dispatch(self):
        result = run_experiment(
            "table4", datasets=("LJ",), algorithms=("BFS",), spec=TINY
        )
        assert result.name == "table4"

    def test_run_experiment_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_profile_kwargs_cover_all(self):
        for profile in ("paper", "ci"):
            for name in EXPERIMENTS:
                kwargs = profile_kwargs(profile, name)
                assert isinstance(kwargs, dict)


class TestHarness:
    def test_run_all_ci(self, capsys):
        results = run_all(["ablation_steiner"], profile="ci")
        assert len(results) == 1
        out = capsys.readouterr().out
        assert "Ablation" in out
        assert "completed in" in out

    def test_cli_writes_markdown(self, tmp_path, capsys):
        from repro.bench.harness import main

        out = tmp_path / "report.md"
        code = main(["ablation_steiner", "--profile", "ci", "--out", str(out)])
        assert code == 0
        text = out.read_text()
        assert "# CommonGraph reproduction" in text
        assert "Ablation" in text

    def test_cli_rejects_unknown(self):
        from repro.bench.harness import main

        with pytest.raises(SystemExit):
            main(["figure99"])
