"""Crash-recovery and corruption tests for the v2 snapshot store.

The fault plans simulate a crash by failing every attempt at one I/O
operation: the append/create raises mid-flight, leaving whatever the
earlier operations committed — exactly the on-disk state a real crash
at that point would leave (modulo fsync, covered separately).
"""

import json
import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    IntegrityError,
    ReproError,
    RetryExhaustedError,
    SnapshotError,
)
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.evolving.store import SnapshotStore
from repro.graph.edgeset import EdgeSet
from repro.testing import FaultPlan, assert_recovers_clean, fault_injection

pytestmark = pytest.mark.faults


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


def make_evolving(name="t"):
    base = es((0, 1), (1, 2), (2, 3))
    batches = [
        DeltaBatch(additions=es((3, 4))),
        DeltaBatch(additions=es((4, 5)), deletions=es((0, 1))),
    ]
    return EvolvingGraph(16, base, batches, name=name)


def next_batch():
    return DeltaBatch(additions=es((5, 6)), deletions=es((1, 2)))


def count_append_ops(tmp_path):
    """The I/O-operation trace of one clean append on a fresh store."""
    store = SnapshotStore.create(tmp_path / "probe", make_evolving())
    probe = FaultPlan()
    with fault_injection(probe):
        store.append(next_batch())
    return list(probe.events)


class TestAppendCrashRecovery:
    def test_crash_at_every_io_step(self, tmp_path):
        """Fail every attempt at the Nth I/O op of append, for every N:
        recover() must always return the store to a verify-clean state
        with either the old or the new batch count."""
        ops = count_append_ops(tmp_path)
        assert len(ops) >= 8  # reads, batch write, backup, manifest
        for n in range(len(ops)):
            directory = tmp_path / f"crash{n}"
            store = SnapshotStore.create(directory, make_evolving())
            crash = FaultPlan().fail_io(index=n, times=10_000)
            with fault_injection(crash):
                try:
                    store.append(next_batch())
                    crashed = False
                except (RetryExhaustedError, ReproError):
                    crashed = True
            assert crash.fired_rules(), f"op {n} ({ops[n]}) never exercised"
            report = SnapshotStore.recover_store(directory)
            check = SnapshotStore.verify_store(directory, deep=True)
            assert check.ok, (
                f"crash at op {n} ({ops[n]}): {check.problems}; "
                f"recovery={report.actions}"
            )
            reopened = SnapshotStore(directory)
            assert reopened.num_batches in (2, 3), f"crash at op {n}"
            reopened.load()  # fully readable
            if not crashed:
                # The fault fired after the commit point; the append is
                # durable and recovery must have preserved it.
                assert reopened.num_batches == 3

    def test_torn_append_rolls_forward_when_batch_intact(self, tmp_path):
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        crash = FaultPlan().fail_io(match="write:manifest.json", times=10_000)
        with fault_injection(crash):
            with pytest.raises(RetryExhaustedError):
                store.append(next_batch())
        report = SnapshotStore.verify_store(tmp_path / "s")
        assert not report.ok
        assert any("torn append" in p for p in report.problems)
        recovery = SnapshotStore.recover_store(tmp_path / "s")
        assert any("completed torn append" in a for a in recovery.actions)
        recovered = SnapshotStore(tmp_path / "s")
        assert recovered.num_batches == 3
        assert (5, 6) in recovered.load().snapshot_edges(3)

    def test_torn_append_rolls_back_when_batch_damaged(self, tmp_path):
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        crash = FaultPlan().fail_io(match="write:manifest.json*", times=10_000)
        with fault_injection(crash):
            with pytest.raises(RetryExhaustedError):
                store.append(next_batch())
        # The orphan batch file itself got damaged before the "crash".
        orphan = tmp_path / "s" / "batch_00002.npz"
        orphan.write_bytes(b"not an npz at all")
        recovery = SnapshotStore.recover_store(tmp_path / "s")
        assert any("rolled back torn append" in a for a in recovery.actions)
        recovered = SnapshotStore(tmp_path / "s")
        assert recovered.num_batches == 2
        assert SnapshotStore.verify_store(tmp_path / "s", deep=True).ok

    def test_skipped_fsync_then_torn_page(self, tmp_path):
        """A lost fsync surfaces as a torn (corrupt) batch file after the
        'crash'; verify detects it and recover rolls back cleanly."""
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        plan = FaultPlan().skip_io(match="fsync:*", times=10_000)
        plan.fail_io(match="write:manifest.json", times=10_000)
        with fault_injection(plan):
            with pytest.raises(RetryExhaustedError):
                store.append(next_batch())
        # Simulate the un-flushed page: truncate the orphan batch file.
        orphan = tmp_path / "s" / "batch_00002.npz"
        orphan.write_bytes(orphan.read_bytes()[: orphan.stat().st_size // 2])
        assert_recovers_clean(tmp_path / "s")
        assert SnapshotStore(tmp_path / "s").num_batches == 2

    def test_failed_append_leaves_instance_usable(self, tmp_path):
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        crash = FaultPlan().fail_io(match="write:batch_*", times=10_000)
        with fault_injection(crash):
            with pytest.raises(RetryExhaustedError):
                store.append(next_batch())
        assert store.num_batches == 2  # in-memory state not committed
        store.recover()
        assert store.append(next_batch()) == 2
        assert store.verify(deep=True).ok

    def test_transient_fault_is_retried_transparently(self, tmp_path):
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        plan = FaultPlan().fail_io(match="write:batch_*", times=1)
        with fault_injection(plan):
            index = store.append(next_batch())
        assert index == 2
        assert plan.fired_rules()
        assert store.verify(deep=True).ok


class TestManifestRecovery:
    def test_corrupt_manifest_restored_from_backup(self, tmp_path):
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        store.append(next_batch())
        manifest = tmp_path / "s" / "manifest.json"
        manifest.write_bytes(b'{"format": "garbage"')
        with pytest.raises(ReproError):
            SnapshotStore(tmp_path / "s")
        recovery = SnapshotStore.recover_store(tmp_path / "s")
        assert any("restored manifest" in a for a in recovery.actions)
        # The backup predates the last append; its batch file is intact
        # on disk, so recovery rolls the append forward again.
        recovered = SnapshotStore(tmp_path / "s")
        assert recovered.num_batches == 3
        assert SnapshotStore.verify_store(tmp_path / "s", deep=True).ok

    def test_both_manifests_destroyed_is_unrecoverable(self, tmp_path):
        SnapshotStore.create(tmp_path / "s", make_evolving())
        (tmp_path / "s" / "manifest.json").write_bytes(b"junk")
        (tmp_path / "s" / "manifest.json.bak").write_bytes(b"junk")
        with pytest.raises(IntegrityError, match="unrecoverable"):
            SnapshotStore.recover_store(tmp_path / "s")

    def test_recover_on_clean_store_is_a_noop(self, tmp_path):
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        before = (tmp_path / "s" / "manifest.json").read_bytes()
        report = store.recover()
        assert not report.changed
        assert (tmp_path / "s" / "manifest.json").read_bytes() == before


class TestCreateCrashSafety:
    def test_crash_at_every_io_step_leaves_no_partial_store(self, tmp_path):
        probe = FaultPlan()
        with fault_injection(probe):
            SnapshotStore.create(tmp_path / "probe", make_evolving())
        ops = list(probe.events)
        assert len(ops) >= 6
        for n in range(len(ops)):
            target = tmp_path / f"create{n}"
            crash = FaultPlan().fail_io(index=n, times=10_000)
            with fault_injection(crash):
                try:
                    SnapshotStore.create(target, make_evolving())
                except (RetryExhaustedError, ReproError):
                    pass
            if target.exists():
                # The fault fired after the directory rename (the commit
                # point): the store must be complete and clean.
                assert SnapshotStore.verify_store(target, deep=True).ok
            else:
                # No partial directory leaked; a later create succeeds.
                store = SnapshotStore.create(target, make_evolving())
                assert store.verify(deep=True).ok
            assert not any(
                p.name.startswith(f"create{n}.creating")
                for p in tmp_path.iterdir()
            ), f"staging directory leaked at op {n}"

    def test_create_into_leftover_non_store_dir_is_refused(self, tmp_path):
        target = tmp_path / "s"
        target.mkdir()
        (target / "base.npz").write_bytes(b"orphaned partial data")
        with pytest.raises(SnapshotError, match="not a snapshot store"):
            SnapshotStore.create(target, make_evolving())

    def test_create_into_empty_existing_dir(self, tmp_path):
        target = tmp_path / "s"
        target.mkdir()
        store = SnapshotStore.create(target, make_evolving())
        assert store.verify(deep=True).ok


class TestV1Compatibility:
    @staticmethod
    def write_v1_store(directory, evolving):
        directory.mkdir(parents=True)
        np.savez_compressed(directory / "base.npz",
                            codes=evolving.snapshot_edges(0).codes)
        for index, batch in enumerate(evolving.batches):
            np.savez_compressed(
                directory / f"batch_{index:05d}.npz",
                additions=batch.additions.codes,
                deletions=batch.deletions.codes,
            )
        manifest = {
            "format": "repro-snapshot-store-v1",
            "name": evolving.name,
            "num_vertices": evolving.num_vertices,
            "num_batches": len(evolving.batches),
        }
        (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))

    def test_v1_store_opens_and_loads_identically(self, tmp_path):
        evolving = make_evolving()
        self.write_v1_store(tmp_path / "v1", evolving)
        store = SnapshotStore(tmp_path / "v1")
        assert store.format_version == 1
        loaded = store.load()
        assert loaded.num_snapshots == evolving.num_snapshots
        for i in range(evolving.num_snapshots):
            assert loaded.snapshot_edges(i) == evolving.snapshot_edges(i)
        report = store.verify(deep=True)
        assert report.ok
        assert any("v1" in note for note in report.notes)

    def test_append_upgrades_v1_to_v2(self, tmp_path):
        self.write_v1_store(tmp_path / "v1", make_evolving())
        store = SnapshotStore(tmp_path / "v1")
        store.append(next_batch())
        assert store.format_version == 2
        reopened = SnapshotStore(tmp_path / "v1")
        assert reopened.format_version == 2
        assert reopened.num_batches == 3
        assert reopened.verify(deep=True).ok

    def test_recover_upgrades_v1_to_v2(self, tmp_path):
        self.write_v1_store(tmp_path / "v1", make_evolving())
        SnapshotStore.recover_store(tmp_path / "v1")
        reopened = SnapshotStore(tmp_path / "v1")
        assert reopened.format_version == 2
        assert reopened.verify(deep=True).ok


class TestAppendComplexity:
    def test_second_append_reads_no_batch_files(self, tmp_path):
        """The cached tip makes appends O(batch): after the first append
        materialises the tip, subsequent appends re-read nothing."""
        store = SnapshotStore.create(tmp_path / "s", make_evolving())
        store.append(next_batch())  # materialises + caches the tip
        trace = FaultPlan()
        with fault_injection(trace):
            store.append(DeltaBatch(additions=es((6, 7))))
        reads = [event for event in trace.events
                 if event.startswith("read:")]
        assert reads == [], f"append re-read files: {reads}"


@pytest.fixture(scope="module")
def pristine_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("pristine")
    store = SnapshotStore.create(root / "s", make_evolving("prop"))
    store.append(next_batch())
    return store.directory


class TestCorruptionProperty:
    @given(
        file_choice=st.integers(min_value=0, max_value=10**9),
        offset_choice=st.integers(min_value=0, max_value=10**9),
        xor=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_single_byte_corruption_is_caught(
        self, pristine_store, file_choice, offset_choice, xor
    ):
        with tempfile.TemporaryDirectory() as scratch:
            target = Path(scratch) / "s"
            shutil.copytree(pristine_store, target)
            # store.lock is an empty advisory-lock artifact, not data —
            # there is nothing in it to corrupt or checksum.
            files = sorted(p for p in target.iterdir()
                           if p.is_file() and p.name != "store.lock")
            victim = files[file_choice % len(files)]
            data = bytearray(victim.read_bytes())
            offset = offset_choice % len(data)
            data[offset] ^= xor
            victim.write_bytes(bytes(data))
            report = SnapshotStore.verify_store(target)
            assert not report.ok, (
                f"corruption of {victim.name}@{offset} (xor {xor:#x}) "
                f"went undetected"
            )
