"""Multi-handle append safety and change notifications for the store.

The query service keeps a long-lived handle open while other processes
(or other handles in this process) may append; the advisory file lock
plus the stale-handle refresh must keep every handle consistent.
"""

from __future__ import annotations

import pytest

from repro.evolving.delta import DeltaBatch
from repro.evolving.generator import generate_evolving_graph
from repro.evolving.store import SnapshotStore
from repro.graph.edgeset import EdgeSet
from repro.graph.generators import rmat_edges


@pytest.fixture
def store_path(tmp_path):
    evolving = generate_evolving_graph(
        num_vertices=64,
        base=rmat_edges(scale=6, num_edges=200, seed=2),
        num_snapshots=3,
        batch_size=12,
        seed=4,
        name="locks",
    )
    path = tmp_path / "store"
    SnapshotStore.create(path, evolving)
    return path


def fresh_batch(store, index):
    """A valid single-edge batch absent from the store's *on-disk* tip.

    Reads through a fresh handle so a deliberately stale ``store``
    argument cannot produce a duplicate addition.
    """
    current = SnapshotStore(store.directory)
    tip = current.load().snapshot_edges(current.num_snapshots - 1)
    n = current.num_vertices
    for u in range(n):
        for v in range(n):
            if u != v and EdgeSet.from_pairs([(u, v)]) - tip:
                return DeltaBatch(
                    additions=EdgeSet.from_pairs([(u, v)]),
                    deletions=EdgeSet.empty(),
                )
    raise AssertionError("graph is complete")  # pragma: no cover


class TestTwoHandles:
    def test_interleaved_appends_do_not_clobber(self, store_path):
        """Two handles to one directory alternate appends; each sees the
        other's batches, nothing is lost, and the store verifies."""
        first = SnapshotStore(store_path)
        second = SnapshotStore(store_path)
        assert first.append(fresh_batch(first, 0)) == 2
        # ``second`` was opened before that append: its in-memory state
        # is stale, so the refresh under the lock must resynchronise it
        # rather than overwrite batch 2.
        assert second.append(fresh_batch(second, 1)) == 3
        assert first.append(fresh_batch(first, 2)) == 4
        assert first.num_batches == 5
        # ``second`` refreshed during its own append; reads stay
        # lock-free, so it only reflects what it saw then.
        assert second.num_batches == 4
        assert SnapshotStore(store_path).num_batches == 5
        report = SnapshotStore(store_path).verify(deep=True)
        assert report.ok, report

    def test_lock_file_is_created(self, store_path):
        store = SnapshotStore(store_path)
        store.append(fresh_batch(store, 0))
        assert (store_path / "store.lock").exists()

    def test_stale_handle_serves_fresh_reads_after_append(self, store_path):
        first = SnapshotStore(store_path)
        second = SnapshotStore(store_path)
        batch = fresh_batch(first, 0)
        first.append(batch)
        # A read-only stale handle still reports the old shape until it
        # appends (reads are lock-free by design)...
        assert second.num_batches == 2
        # ...but its next append resynchronises and lands on top.
        second.append(fresh_batch(second, 1))
        assert second.num_batches == 4
        assert second.read_batch(2).additions == batch.additions


class TestSubscriptions:
    def test_listener_sees_each_append(self, store_path):
        store = SnapshotStore(store_path)
        seen = []
        unsubscribe = store.subscribe(
            lambda index, batch: seen.append((index, batch.size))
        )
        batch = fresh_batch(store, 0)
        store.append(batch)
        assert seen == [(2, batch.size)]
        unsubscribe()
        store.append(fresh_batch(store, 1))
        assert len(seen) == 1, "unsubscribed listener must not fire"

    def test_unsubscribe_is_idempotent(self, store_path):
        store = SnapshotStore(store_path)
        unsubscribe = store.subscribe(lambda index, batch: None)
        unsubscribe()
        unsubscribe()

    def test_failed_append_does_not_notify(self, store_path):
        store = SnapshotStore(store_path)
        seen = []
        store.subscribe(lambda index, batch: seen.append(index))
        tip = store.load().snapshot_edges(store.num_snapshots - 1)
        present = EdgeSet(tip.codes[:1])
        with pytest.raises(Exception):
            store.append(DeltaBatch(additions=present,
                                    deletions=EdgeSet.empty()))
        assert seen == []
