"""Tests for the directory-backed snapshot store."""

import json

import pytest

from repro.errors import DeltaError, SnapshotError
from repro.evolving.delta import DeltaBatch
from repro.evolving.store import SnapshotStore
from repro.graph.edgeset import EdgeSet


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


@pytest.fixture
def store(tmp_path, small_evolving):
    return SnapshotStore.create(tmp_path / "store", small_evolving)


class TestCreateAndLoad:
    def test_roundtrip(self, store, small_evolving):
        loaded = store.load()
        assert loaded.num_vertices == small_evolving.num_vertices
        assert loaded.num_snapshots == small_evolving.num_snapshots
        assert loaded.name == small_evolving.name
        for i in range(small_evolving.num_snapshots):
            assert loaded.snapshot_edges(i) == small_evolving.snapshot_edges(i)

    def test_open_reads_manifest_only(self, store):
        reopened = SnapshotStore(store.directory)
        assert reopened.num_snapshots == store.num_snapshots
        assert reopened.num_vertices == store.num_vertices

    def test_create_refuses_existing(self, store, small_evolving):
        with pytest.raises(SnapshotError, match="already contains"):
            SnapshotStore.create(store.directory, small_evolving)

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(SnapshotError, match="not a snapshot store"):
            SnapshotStore(tmp_path / "nothing")

    def test_open_bad_format(self, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(SnapshotError, match="unsupported"):
            SnapshotStore(bad)

    def test_read_batch_bounds(self, store):
        with pytest.raises(SnapshotError):
            store.read_batch(store.num_batches)

    def test_missing_batch_file(self, store):
        (store.directory / "batch_00000.npz").unlink()
        with pytest.raises(SnapshotError, match="missing"):
            store.read_batch(0)


class TestAppend:
    def test_append_extends_store(self, tmp_path):
        base = es((0, 1), (1, 2))
        from repro.evolving.snapshots import EvolvingGraph

        store = SnapshotStore.create(
            tmp_path / "s", EvolvingGraph(4, base, name="t")
        )
        index = store.append(DeltaBatch(additions=es((2, 3))))
        assert index == 0
        assert store.num_snapshots == 2
        # Visible to a fresh open as well.
        again = SnapshotStore(store.directory)
        assert again.num_snapshots == 2
        assert (2, 3) in again.load().snapshot_edges(1)

    def test_append_validates_before_commit(self, tmp_path):
        from repro.evolving.snapshots import EvolvingGraph

        store = SnapshotStore.create(
            tmp_path / "s", EvolvingGraph(4, es((0, 1)))
        )
        with pytest.raises(DeltaError):
            store.append(DeltaBatch(additions=es((0, 1))))  # already present
        assert store.num_snapshots == 1

    def test_append_vertex_range(self, tmp_path):
        from repro.evolving.snapshots import EvolvingGraph

        store = SnapshotStore.create(
            tmp_path / "s", EvolvingGraph(4, es((0, 1)))
        )
        with pytest.raises(SnapshotError, match="out of range"):
            store.append(DeltaBatch(additions=es((0, 9))))
