"""Tests for repro.evolving.delta."""

import pytest

from repro.errors import DeltaError
from repro.evolving.delta import DeltaBatch
from repro.graph.edgeset import EdgeSet


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


class TestInvariants:
    def test_disjointness_enforced(self):
        with pytest.raises(DeltaError):
            DeltaBatch(additions=es((0, 1)), deletions=es((0, 1)))

    def test_empty_batch_ok(self):
        batch = DeltaBatch()
        assert batch.size == 0

    def test_size(self):
        batch = DeltaBatch(additions=es((0, 1), (1, 2)), deletions=es((2, 3)))
        assert batch.size == 3

    def test_repr(self):
        batch = DeltaBatch(additions=es((0, 1)))
        assert "+1" in repr(batch)


class TestApply:
    def test_apply(self):
        batch = DeltaBatch(additions=es((1, 2)), deletions=es((0, 1)))
        out = batch.apply(es((0, 1), (3, 4)))
        assert set(out) == {(1, 2), (3, 4)}

    def test_strict_rejects_existing_addition(self):
        batch = DeltaBatch(additions=es((0, 1)))
        with pytest.raises(DeltaError, match="already present"):
            batch.apply(es((0, 1)))

    def test_strict_rejects_missing_deletion(self):
        batch = DeltaBatch(deletions=es((0, 1)))
        with pytest.raises(DeltaError, match="not present"):
            batch.apply(es((2, 3)))

    def test_lenient_apply(self):
        batch = DeltaBatch(additions=es((0, 1)), deletions=es((5, 6)))
        out = batch.apply(es((0, 1)), strict=False)
        assert set(out) == {(0, 1)}

    def test_inverse_undoes(self):
        base = es((0, 1), (1, 2), (2, 3))
        batch = DeltaBatch(additions=es((3, 4)), deletions=es((1, 2)))
        there = batch.apply(base)
        back = batch.inverse().apply(there)
        assert back == base


class TestCompose:
    def test_disjoint_batches_concatenate(self):
        a = DeltaBatch(additions=es((0, 1)), deletions=es((2, 3)))
        b = DeltaBatch(additions=es((4, 5)), deletions=es((6, 7)))
        c = a.compose(b)
        assert set(c.additions) == {(0, 1), (4, 5)}
        assert set(c.deletions) == {(2, 3), (6, 7)}

    def test_add_then_delete_cancels(self):
        a = DeltaBatch(additions=es((0, 1)))
        b = DeltaBatch(deletions=es((0, 1)))
        c = a.compose(b)
        assert c.size == 0

    def test_delete_then_readd_cancels(self):
        a = DeltaBatch(deletions=es((0, 1)))
        b = DeltaBatch(additions=es((0, 1)))
        c = a.compose(b)
        assert c.size == 0

    def test_compose_equals_sequential_apply(self):
        base = es((0, 1), (1, 2), (2, 3), (3, 4))
        a = DeltaBatch(additions=es((4, 5)), deletions=es((1, 2), (2, 3)))
        b = DeltaBatch(additions=es((1, 2), (5, 6)), deletions=es((4, 5)))
        sequential = b.apply(a.apply(base))
        composed = a.compose(b).apply(base)
        assert sequential == composed
