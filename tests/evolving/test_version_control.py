"""Tests for repro.evolving.version_control (Table 1 primitives)."""

import pytest
from hypothesis import given, settings

from repro.errors import SnapshotError
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.evolving.version_control import VersionController
from repro.graph.edgeset import EdgeSet
from tests.strategies import evolving_graphs


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


@pytest.fixture
def controller():
    base = es((0, 1), (1, 2), (2, 3))
    batches = [
        DeltaBatch(additions=es((3, 0)), deletions=es((0, 1))),
        DeltaBatch(additions=es((0, 1)), deletions=es((2, 3))),
    ]
    return VersionController(EvolvingGraph(4, base, batches))


class TestGetVersion:
    def test_matches_snapshot(self, controller):
        for i in range(controller.num_versions):
            overlay = controller.get_version(i)
            assert overlay.edge_set() == controller.evolving.snapshot_edges(i)

    def test_overlay_shares_common_csr(self, controller):
        a = controller.get_version(0)
        b = controller.get_version(1)
        assert a.base is b.base  # the common CSR object is shared

    def test_out_of_range(self, controller):
        with pytest.raises(SnapshotError):
            controller.get_version(5)


class TestDiff:
    def test_adjacent_diff_matches_batch(self, controller):
        batch = controller.evolving.batches[0]
        diff = controller.diff(0, 1)
        assert diff.additions == batch.additions
        assert diff.deletions == batch.deletions

    def test_diff_applies(self, controller):
        diff = controller.diff(0, 2)
        out = diff.apply(controller.evolving.snapshot_edges(0))
        assert out == controller.evolving.snapshot_edges(2)

    def test_self_diff_empty(self, controller):
        diff = controller.diff(1, 1)
        assert diff.size == 0

    def test_self_diff_empty_at_every_version(self, controller):
        for version in range(controller.num_versions):
            diff = controller.diff(version, version)
            assert diff.size == 0
            assert diff.additions == EdgeSet.empty()
            assert diff.deletions == EdgeSet.empty()

    def test_reversed_order_is_inverse_batch(self, controller):
        forward = controller.diff(0, 2)
        backward = controller.diff(2, 0)
        assert backward == forward.inverse()
        # Round-tripping restores the starting snapshot exactly.
        start = controller.evolving.snapshot_edges(0)
        assert backward.apply(forward.apply(start)) == start

    def test_out_of_range(self, controller):
        with pytest.raises(SnapshotError):
            controller.diff(0, 9)

    def test_out_of_range_each_argument(self, controller):
        n = controller.num_versions
        for a, b in ((n, 0), (0, n), (-1, 0), (0, -1)):
            with pytest.raises(SnapshotError, match="out of range"):
                controller.diff(a, b)


class TestNewVersion:
    def test_appends_and_decomposes(self, controller):
        before = controller.num_versions
        idx = controller.new_version(additions=es((3, 1)), deletions=es((1, 2)))
        assert idx == before
        assert controller.num_versions == before + 1
        # New snapshot retrievable and correct.
        overlay = controller.get_version(idx)
        assert (3, 1) in overlay.edge_set()
        assert (1, 2) not in overlay.edge_set()

    def test_common_graph_shrinks_when_touched(self, controller):
        common_before = controller.decomposition.common
        touched = next(iter(common_before))
        controller.new_version(additions=EdgeSet.empty(), deletions=es(touched))
        assert touched not in controller.decomposition.common
        # Decomposition still reconstructs every snapshot.
        for i in range(controller.num_versions):
            assert (
                controller.decomposition.snapshot_edges(i)
                == controller.evolving.snapshot_edges(i)
            )

    def test_matches_full_rebuild(self, controller):
        from repro.core.common import CommonGraphDecomposition

        controller.new_version(additions=es((3, 2)), deletions=EdgeSet.empty())
        rebuilt = CommonGraphDecomposition.from_evolving(controller.evolving)
        assert rebuilt.common == controller.decomposition.common
        for a, b in zip(rebuilt.surpluses, controller.decomposition.surpluses):
            assert a == b


@settings(max_examples=30)
@given(evolving_graphs(max_batches=3))
def test_diff_between_any_versions(eg):
    vc = VersionController(eg)
    n = vc.num_versions
    for a in range(n):
        for b in range(n):
            diff = vc.diff(a, b)
            out = diff.apply(eg.snapshot_edges(a))
            assert out == eg.snapshot_edges(b)
