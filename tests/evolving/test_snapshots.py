"""Tests for repro.evolving.snapshots."""

import pytest
from hypothesis import given

from repro.errors import SnapshotError
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet
from tests.strategies import evolving_graphs


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


def simple_eg():
    base = es((0, 1), (1, 2))
    batches = [
        DeltaBatch(additions=es((2, 3)), deletions=es((0, 1))),
        DeltaBatch(additions=es((0, 1)), deletions=es((1, 2))),
    ]
    return EvolvingGraph(4, base, batches)


class TestSnapshots:
    def test_shape(self):
        eg = simple_eg()
        assert eg.num_snapshots == 3

    def test_snapshot_edges(self):
        eg = simple_eg()
        assert set(eg.snapshot_edges(0)) == {(0, 1), (1, 2)}
        assert set(eg.snapshot_edges(1)) == {(1, 2), (2, 3)}
        assert set(eg.snapshot_edges(2)) == {(0, 1), (2, 3)}

    def test_negative_index(self):
        eg = simple_eg()
        assert eg.snapshot_edges(-1) == eg.snapshot_edges(2)

    def test_out_of_range(self):
        eg = simple_eg()
        with pytest.raises(SnapshotError):
            eg.snapshot_edges(3)

    def test_caching_is_consistent(self):
        eg = simple_eg()
        later = eg.snapshot_edges(2)
        earlier = eg.snapshot_edges(1)
        assert set(earlier) == {(1, 2), (2, 3)}
        assert eg.snapshot_edges(2) == later

    def test_snapshot_csr(self):
        eg = simple_eg()
        csr = eg.snapshot_csr(1)
        assert csr.edge_set() == eg.snapshot_edges(1)
        assert csr.num_vertices == 4

    def test_all_snapshot_edges(self):
        eg = simple_eg()
        all_sets = eg.all_snapshot_edges()
        assert len(all_sets) == 3
        assert all_sets[0] == eg.snapshot_edges(0)

    def test_base_out_of_range_vertex(self):
        with pytest.raises(SnapshotError):
            EvolvingGraph(2, es((0, 5)))


class TestAppend:
    def test_append_batch(self):
        eg = simple_eg()
        eg.append_batch(DeltaBatch(additions=es((3, 0))))
        assert eg.num_snapshots == 4
        assert (3, 0) in eg.snapshot_edges(3)

    def test_append_invalid_batch_rejected(self):
        eg = simple_eg()
        with pytest.raises(Exception):
            eg.append_batch(DeltaBatch(deletions=es((3, 3))))
        assert eg.num_snapshots == 3  # state not poisoned

    def test_append_vertex_out_of_range(self):
        eg = simple_eg()
        with pytest.raises(SnapshotError):
            eg.append_batch(DeltaBatch(additions=es((0, 9))))


class TestPersistence:
    def test_npz_roundtrip(self, tmp_path):
        eg = simple_eg()
        eg.name = "demo"
        path = tmp_path / "eg.npz"
        eg.save_npz(path)
        loaded = EvolvingGraph.load_npz(path)
        assert loaded.name == "demo"
        assert loaded.num_vertices == eg.num_vertices
        assert loaded.num_snapshots == eg.num_snapshots
        for i in range(eg.num_snapshots):
            assert loaded.snapshot_edges(i) == eg.snapshot_edges(i)

    def test_npz_roundtrip_no_batches(self, tmp_path):
        eg = EvolvingGraph(3, es((0, 1)))
        path = tmp_path / "eg.npz"
        eg.save_npz(path)
        loaded = EvolvingGraph.load_npz(path)
        assert loaded.num_snapshots == 1
        assert loaded.snapshot_edges(0) == eg.snapshot_edges(0)


class TestCoarsened:
    def test_keeps_every_kth_snapshot(self):
        eg = simple_eg()
        coarse = eg.coarsened(2)
        assert coarse.num_snapshots == 2
        assert coarse.snapshot_edges(0) == eg.snapshot_edges(0)
        assert coarse.snapshot_edges(1) == eg.snapshot_edges(2)

    def test_factor_one_is_copy(self):
        eg = simple_eg()
        coarse = eg.coarsened(1)
        assert coarse.num_snapshots == eg.num_snapshots
        assert coarse is not eg

    def test_factor_larger_than_stream(self):
        eg = simple_eg()
        coarse = eg.coarsened(10)
        assert coarse.num_snapshots == 2
        assert coarse.snapshot_edges(-1) == eg.snapshot_edges(-1)

    def test_invalid_factor(self):
        with pytest.raises(SnapshotError):
            simple_eg().coarsened(0)

    @given(evolving_graphs(max_batches=6))
    def test_coarsened_snapshots_are_a_subsequence(self, eg):
        for factor in (2, 3):
            coarse = eg.coarsened(factor)
            originals = eg.all_snapshot_edges()
            kept = [
                originals[min(k * factor, eg.num_snapshots - 1)]
                for k in range(coarse.num_snapshots)
            ]
            assert coarse.all_snapshot_edges() == kept


@given(evolving_graphs())
def test_random_streams_are_well_formed(eg):
    """Every generated snapshot stays within the vertex range and the
    batch algebra replays cleanly from the base."""
    current = eg.snapshot_edges(0)
    for t, batch in enumerate(eg.batches):
        current = batch.apply(current)
        assert current == eg.snapshot_edges(t + 1)
        assert current.max_vertex() < eg.num_vertices
