"""Tests for repro.evolving.generator."""

import pytest

from repro.errors import DeltaError
from repro.evolving.generator import UpdateStreamGenerator, generate_evolving_graph
from repro.graph.generators import erdos_renyi_edges


BASE = erdos_renyi_edges(64, 600, seed=1)


class TestUpdateStreamGenerator:
    def test_batch_size_respected(self):
        gen = UpdateStreamGenerator(64, BASE, batch_size=40, seed=2)
        batch = gen.next_batch()
        assert batch.size == 40

    def test_add_fraction(self):
        gen = UpdateStreamGenerator(64, BASE, batch_size=40, add_fraction=0.75, seed=2)
        batch = gen.next_batch()
        assert len(batch.additions) == 30
        assert len(batch.deletions) == 10

    def test_pure_additions(self):
        gen = UpdateStreamGenerator(64, BASE, batch_size=20, add_fraction=1.0, seed=3)
        batch = gen.next_batch()
        assert len(batch.deletions) == 0
        assert len(batch.additions) == 20

    def test_pure_deletions(self):
        gen = UpdateStreamGenerator(64, BASE, batch_size=20, add_fraction=0.0, seed=3)
        batch = gen.next_batch()
        assert len(batch.additions) == 0
        assert batch.deletions.issubset(BASE)

    def test_stream_stays_well_formed(self):
        gen = UpdateStreamGenerator(64, BASE, batch_size=30, seed=4)
        current = BASE
        for _ in range(10):
            batch = gen.next_batch()
            current = batch.apply(current)  # strict: raises if malformed
        assert gen.current_edges == current

    def test_readds_come_from_removed_pool(self):
        gen = UpdateStreamGenerator(
            64, BASE, batch_size=30, add_fraction=0.5, readd_fraction=1.0, seed=5
        )
        first = gen.next_batch()
        removed = first.deletions
        second = gen.next_batch()
        # With readd_fraction=1 every addition that can be a re-add is one.
        readds = second.additions & removed
        assert len(readds) > 0

    def test_protect_vertex_keeps_out_edges(self):
        src0 = {(u, v) for u, v in BASE if u == 0}
        assert src0, "fixture vertex 0 must have out-edges"
        gen = UpdateStreamGenerator(
            64, BASE, batch_size=50, add_fraction=0.0, seed=6, protect_vertex=0
        )
        for _ in range(5):
            batch = gen.next_batch()
            assert all(u != 0 for u, _ in batch.deletions)

    def test_invalid_parameters(self):
        with pytest.raises(DeltaError):
            UpdateStreamGenerator(64, BASE, batch_size=0)
        with pytest.raises(DeltaError):
            UpdateStreamGenerator(64, BASE, batch_size=1, add_fraction=1.5)
        with pytest.raises(DeltaError):
            UpdateStreamGenerator(64, BASE, batch_size=1, readd_fraction=-0.1)

    def test_deterministic(self):
        a = UpdateStreamGenerator(64, BASE, batch_size=25, seed=7).next_batch()
        b = UpdateStreamGenerator(64, BASE, batch_size=25, seed=7).next_batch()
        assert a.additions == b.additions
        assert a.deletions == b.deletions


class TestGenerateEvolvingGraph:
    def test_shape(self):
        eg = generate_evolving_graph(64, BASE, num_snapshots=6, batch_size=20, seed=1)
        assert eg.num_snapshots == 6
        assert len(eg.batches) == 5

    def test_single_snapshot(self):
        eg = generate_evolving_graph(64, BASE, num_snapshots=1, batch_size=20)
        assert eg.num_snapshots == 1
        assert eg.snapshot_edges(0) == BASE

    def test_invalid_count(self):
        with pytest.raises(DeltaError):
            generate_evolving_graph(64, BASE, num_snapshots=0, batch_size=10)

    def test_name_passthrough(self):
        eg = generate_evolving_graph(
            64, BASE, num_snapshots=2, batch_size=10, name="demo"
        )
        assert eg.name == "demo"
