"""Tests for the five monotonic algorithms (Table 3) and the registry."""

import numpy as np
import pytest

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.registry import (
    ALGORITHMS,
    algorithm_names,
    get_algorithm,
    register_algorithm,
)
from repro.algorithms.suite import BFS, SSNP, SSSP, SSWP, Viterbi
from repro.errors import AlgorithmError


class TestEdgeFunctions:
    """Each algorithm's EdgeFunction, literally per Table 3."""

    def test_bfs(self):
        assert BFS().proposals(np.array([3.0]), np.array([99.0]))[0] == 4.0

    def test_sssp(self):
        assert SSSP().proposals(np.array([3.0]), np.array([5.0]))[0] == 8.0

    def test_sswp(self):
        # widest path: min(Val(u), wt)
        assert SSWP().proposals(np.array([3.0]), np.array([5.0]))[0] == 3.0
        assert SSWP().proposals(np.array([7.0]), np.array([5.0]))[0] == 5.0

    def test_ssnp(self):
        # narrowest path: max(Val(u), wt)
        assert SSNP().proposals(np.array([3.0]), np.array([5.0]))[0] == 5.0
        assert SSNP().proposals(np.array([7.0]), np.array([5.0]))[0] == 7.0

    def test_viterbi(self):
        assert Viterbi().proposals(np.array([1.0]), np.array([4.0]))[0] == 0.25


class TestDirections:
    def test_minimising(self):
        for cls in (BFS, SSSP, SSNP):
            alg = cls()
            assert alg.direction == "min"
            assert alg.worst == np.inf

    def test_maximising(self):
        for cls in (SSWP, Viterbi):
            alg = cls()
            assert alg.direction == "max"

    def test_source_beats_worst(self, algorithm):
        a = np.array([algorithm.source_value])
        b = np.array([algorithm.worst])
        assert bool(algorithm.better(a, b)[0])


class TestInitialValues:
    def test_shape_and_source(self, algorithm):
        values = algorithm.initial_values(5, source=2)
        assert values.shape == (5,)
        assert values[2] == algorithm.source_value
        mask = np.ones(5, dtype=bool)
        mask[2] = False
        assert np.all(values[mask] == algorithm.worst)

    def test_source_out_of_range(self, algorithm):
        with pytest.raises(AlgorithmError):
            algorithm.initial_values(5, source=5)
        with pytest.raises(AlgorithmError):
            algorithm.initial_values(5, source=-1)


class TestReductions:
    def test_reduce_at_min(self):
        alg = SSSP()
        values = np.array([10.0, 10.0])
        alg.reduce_at(values, np.array([0, 0, 1]), np.array([7.0, 9.0, 12.0]))
        assert values.tolist() == [7.0, 10.0]

    def test_reduce_at_max(self):
        alg = SSWP()
        values = np.array([1.0, 1.0])
        alg.reduce_at(values, np.array([0, 0]), np.array([3.0, 2.0]))
        assert values.tolist() == [3.0, 1.0]

    def test_best(self):
        assert SSSP().best(np.array([1.0]), np.array([2.0]))[0] == 1.0
        assert SSWP().best(np.array([1.0]), np.array([2.0]))[0] == 2.0

    def test_better_strict(self, algorithm):
        v = np.array([algorithm.source_value])
        assert not bool(algorithm.better(v, v)[0])


class TestMonotonicity:
    """A better upstream value never yields a worse proposal."""

    @pytest.mark.parametrize("weight", [1.0, 3.0, 8.0])
    def test_proposal_monotonic_in_source_value(self, algorithm, weight):
        lo, hi = 1.0, 6.0
        better_in = lo if algorithm.direction == "min" else hi
        worse_in = hi if algorithm.direction == "min" else lo
        p_better = algorithm.proposals(np.array([better_in]), np.array([weight]))
        p_worse = algorithm.proposals(np.array([worse_in]), np.array([weight]))
        assert not bool(algorithm.better(p_worse, p_better)[0])


class TestRegistry:
    def test_all_five_registered(self):
        assert algorithm_names() == ["BFS", "SSNP", "SSSP", "SSWP", "Viterbi"]

    def test_lookup_case_insensitive(self):
        assert isinstance(get_algorithm("bfs"), BFS)
        assert isinstance(get_algorithm("SSSP"), SSSP)

    def test_unknown_name(self):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            get_algorithm("pagerank")

    def test_register_custom(self):
        class Capped(MonotonicAlgorithm):
            name = "CappedSSSP-testonly"
            direction = "min"
            worst = np.inf
            source_value = 0.0

            def proposals(self, src_values, weights):
                return np.minimum(src_values + weights, 100.0)

        try:
            register_algorithm(Capped)
            assert isinstance(get_algorithm("cappedsssp-testonly"), Capped)
            # Re-registering the same class is idempotent.
            register_algorithm(Capped)

            class Clash(MonotonicAlgorithm):
                name = "CappedSSSP-testonly"
                direction = "min"

                def proposals(self, src_values, weights):
                    return src_values

            with pytest.raises(AlgorithmError, match="already registered"):
                register_algorithm(Clash)
        finally:
            ALGORITHMS.pop("cappedsssp-testonly", None)

    def test_bad_direction_rejected(self):
        class Broken(MonotonicAlgorithm):
            name = "broken"
            direction = "sideways"

            def proposals(self, src_values, weights):
                return src_values

        with pytest.raises(AlgorithmError):
            Broken()
