"""Cross-validation of the algorithm suite against NetworkX.

Our primary oracle is the naive fixpoint reference in
``tests/helpers.py``; this file adds a fully independent one.  BFS and
SSSP map to NetworkX built-ins; SSWP (maximise the minimum edge weight)
and SSNP (minimise the maximum edge weight) are expressed through
NetworkX Dijkstra on transformed objectives.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings

from repro.algorithms.registry import get_algorithm
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from tests.strategies import edge_pairs

WF = HashWeights(max_weight=8, seed=7)


def build_nx(edges: EdgeSet) -> nx.DiGraph:
    g = nx.DiGraph()
    src, dst = edges.arrays()
    weights = WF(src, dst)
    for u, v, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
        g.add_edge(u, v, weight=w)
    return g


def our_values(edges: EdgeSet, n: int, name: str, source: int) -> np.ndarray:
    csr = CSRGraph.from_edge_set(edges, n, weight_fn=WF)
    return static_compute(csr, get_algorithm(name), source).values


@settings(max_examples=40, deadline=None)
@given(edge_pairs(max_edges=30))
def test_bfs_matches_networkx(ab):
    n, pairs = ab
    edges = EdgeSet.from_pairs(pairs)
    got = our_values(edges, n, "BFS", 0)
    g = build_nx(edges)
    g.add_node(0)
    lengths = nx.single_source_shortest_path_length(g, 0)
    for v in range(n):
        want = lengths.get(v, np.inf)
        assert got[v] == want, (v, got[v], want)


@settings(max_examples=40, deadline=None)
@given(edge_pairs(max_edges=30))
def test_sssp_matches_networkx(ab):
    n, pairs = ab
    edges = EdgeSet.from_pairs(pairs)
    got = our_values(edges, n, "SSSP", 0)
    g = build_nx(edges)
    g.add_node(0)
    lengths = nx.single_source_dijkstra_path_length(g, 0)
    for v in range(n):
        want = lengths.get(v, np.inf)
        assert got[v] == want, (v, got[v], want)


def _widest_paths(g: nx.DiGraph, source: int) -> dict:
    """Maximin path widths via a Dijkstra-style search."""
    import heapq

    widths = {source: np.inf}
    heap = [(-np.inf, source)]
    visited = set()
    while heap:
        neg_width, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for _, v, data in g.out_edges(u, data=True):
            width = min(-neg_width, data["weight"])
            if width > widths.get(v, 0.0):
                widths[v] = width
                heapq.heappush(heap, (-width, v))
    return widths


def _narrowest_paths(g: nx.DiGraph, source: int) -> dict:
    """Minimax path bottlenecks via a Dijkstra-style search."""
    import heapq

    costs = {source: 0.0}
    heap = [(0.0, source)]
    visited = set()
    while heap:
        cost, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for _, v, data in g.out_edges(u, data=True):
            bottleneck = max(cost, data["weight"])
            if bottleneck < costs.get(v, np.inf):
                costs[v] = bottleneck
                heapq.heappush(heap, (bottleneck, v))
    return costs


@settings(max_examples=40, deadline=None)
@given(edge_pairs(max_edges=30))
def test_sswp_matches_maximin_oracle(ab):
    n, pairs = ab
    edges = EdgeSet.from_pairs(pairs)
    got = our_values(edges, n, "SSWP", 0)
    g = build_nx(edges)
    g.add_node(0)
    widths = _widest_paths(g, 0)
    for v in range(n):
        want = widths.get(v, 0.0)
        assert got[v] == want, (v, got[v], want)


@settings(max_examples=40, deadline=None)
@given(edge_pairs(max_edges=30))
def test_ssnp_matches_minimax_oracle(ab):
    n, pairs = ab
    edges = EdgeSet.from_pairs(pairs)
    got = our_values(edges, n, "SSNP", 0)
    g = build_nx(edges)
    g.add_node(0)
    costs = _narrowest_paths(g, 0)
    for v in range(n):
        want = costs.get(v, np.inf)
        assert got[v] == want, (v, got[v], want)


def test_sssp_on_rmat_matches_networkx(small_rmat):
    """One larger deterministic cross-check (1.5K edges)."""
    n = 256
    got = our_values(small_rmat, n, "SSSP", 3)
    g = build_nx(small_rmat)
    g.add_node(3)
    lengths = nx.single_source_dijkstra_path_length(g, 3)
    for v in range(n):
        assert got[v] == lengths.get(v, np.inf)
