"""Tests for the retry/backoff/deadline/breaker primitives."""

import asyncio

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ResilienceError,
    RetryExhaustedError,
)
from repro.obs.clock import FakeClock as ObsFakeClock
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    retry_call,
    retry_call_async,
    with_retries,
)


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class Flaky:
    """Fails the first ``failures`` calls, then returns ``value``."""

    def __init__(self, failures, value="done", exc=OSError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom #{self.calls}")
        return self.value


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3)
        assert list(policy.delays()) == [0.1, 0.2, 0.3]

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.5)
        assert policy.delay(3) == 2.5

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryCall:
    def test_success_after_retries(self):
        fn = Flaky(2)
        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0)
        assert retry_call(fn, policy=policy, sleep=slept.append) == "done"
        assert fn.calls == 3
        assert slept == [0.5, 1.0]

    def test_exhaustion_raises_and_chains(self):
        fn = Flaky(10)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            retry_call(fn, policy=policy, sleep=lambda _: None)
        assert fn.calls == 3
        assert isinstance(info.value.__cause__, OSError)
        assert isinstance(info.value, ResilienceError)

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(1, exc=ValueError)
        policy = RetryPolicy(max_attempts=5, retry_on=(OSError,))
        with pytest.raises(ValueError):
            retry_call(fn, policy=policy, sleep=lambda _: None)
        assert fn.calls == 1

    def test_deadline_stops_retry_loop(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        fn = Flaky(10)

        def sleep(seconds):
            clock.advance(2.0)  # each backoff blows the budget

        policy = RetryPolicy(max_attempts=5, base_delay=0.1)
        with pytest.raises(DeadlineExceededError):
            retry_call(fn, policy=policy, sleep=sleep, deadline=deadline)
        assert fn.calls == 1

    def test_arguments_are_forwarded(self):
        policy = RetryPolicy(max_attempts=1)
        assert retry_call(
            lambda a, b=0: a + b, 2, policy=policy, b=3
        ) == 5


class TestDeadline:
    def test_never_expires(self):
        deadline = Deadline.never()
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_expiry_with_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(3.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="flush"):
            deadline.check("flush")

    def test_zero_budget_is_born_expired(self):
        deadline = Deadline.after(0.0, clock=FakeClock())
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_negative_budget_is_born_expired(self):
        # A caller computing `min(cap, client_budget)` can legitimately
        # end up negative; that must clamp to "expired", never wrap into
        # a huge remaining budget.
        deadline = Deadline.after(-5.0, clock=FakeClock())
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_expired_deadline_beats_first_async_attempt(self):
        # The budget can die between request arrival and the first
        # attempt (e.g. spent entirely in an admission queue); the
        # retry loop must raise before invoking the operation at all.
        calls = []

        async def op():
            calls.append(1)
            return "never"

        async def scenario():
            deadline = Deadline.after(0.0, clock=FakeClock())
            await retry_call_async(
                op, policy=RetryPolicy(max_attempts=3, base_delay=0.0),
                deadline=deadline,
            )

        with pytest.raises(DeadlineExceededError):
            asyncio.run(scenario())
        assert calls == []

    def test_async_budget_exhausted_mid_backoff(self):
        # The backoff sleep burns the rest of the budget: the loop must
        # stop with DeadlineExceededError before the next attempt, and
        # the backoff itself must have been clamped to the remaining
        # budget rather than sleeping the policy's full delay.
        clock = FakeClock()
        fn = Flaky(10)
        slept = []

        async def sleep(seconds):
            slept.append(seconds)
            clock.advance(seconds + 0.5)  # sleep overshoots the budget

        async def scenario():
            deadline = Deadline.after(1.0, clock=clock)
            policy = RetryPolicy(max_attempts=5, base_delay=2.0)

            async def attempt():
                return fn()

            await retry_call_async(
                attempt, policy=policy, sleep=sleep, deadline=deadline,
            )

        with pytest.raises(DeadlineExceededError):
            asyncio.run(scenario())
        assert fn.calls == 1
        assert slept == [pytest.approx(1.0)]  # clamped from 2.0


class TestCircuitBreaker:
    def make(self, clock=None, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout", 10.0)
        return CircuitBreaker("dep", clock=clock or ObsFakeClock(), **kwargs)

    def trip(self, breaker):
        for _ in range(breaker.failure_threshold):
            breaker.before_call()
            breaker.record_failure()

    def test_starts_closed_and_stays_closed_below_threshold(self):
        breaker = self.make()
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.before_call()  # still admitted

    def test_threshold_consecutive_failures_trip_open(self):
        breaker = self.make()
        self.trip(breaker)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError) as info:
            breaker.before_call("query")
        assert info.value.retry_after == pytest.approx(10.0)

    def test_success_resets_the_failure_streak(self):
        breaker = self.make()
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        breaker.before_call()
        breaker.record_success()
        # The streak restarted: two more failures do not trip it.
        for _ in range(2):
            breaker.before_call()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_reset_timeout_admits_one_probe(self):
        clock = ObsFakeClock()
        breaker = self.make(clock)
        self.trip(breaker)
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.before_call()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # quota of 1 is taken
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.before_call()  # closed again: calls flow

    def test_half_open_failure_reopens_for_a_full_window(self):
        clock = ObsFakeClock()
        breaker = self.make(clock)
        self.trip(breaker)
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(5.0)
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_neutral_outcome_returns_the_probe_without_closing(self):
        # A client error during a half-open probe says nothing about the
        # dependency; the probe slot must come back so the next request
        # can actually test the path.
        clock = ObsFakeClock()
        breaker = self.make(clock)
        self.trip(breaker)
        clock.advance(10.0)
        breaker.before_call()
        breaker.record_neutral()
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.before_call()  # admitted again, no CircuitOpenError
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_transitions_and_snapshot(self):
        clock = ObsFakeClock()
        fired = []
        breaker = CircuitBreaker(
            "planner", failure_threshold=2, reset_timeout=4.0, clock=clock,
            on_transition=lambda prev, to: fired.append((prev, to)),
        )
        self.trip(breaker)
        clock.advance(4.0)
        breaker.before_call()
        breaker.record_success()
        assert fired == [
            ("closed", "open"), ("open", "half_open"),
            ("half_open", "closed"),
        ]
        snapshot = breaker.snapshot()
        assert snapshot["name"] == "planner"
        assert snapshot["state"] == "closed"
        assert snapshot["opens"] == 1
        assert snapshot["transitions"] == [
            "closed->open", "open->half_open", "half_open->closed",
        ]

    def test_call_wrapper_drives_the_machine(self):
        breaker = self.make(failure_threshold=2)
        fn = Flaky(2)
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(fn)
        with pytest.raises(CircuitOpenError):
            breaker.call(fn)
        assert fn.calls == 2  # the third call never reached fn

    def test_call_wrapper_failure_on_filter(self):
        # Exceptions outside failure_on are neutral: they propagate but
        # do not count against the dependency.
        breaker = self.make(failure_threshold=1)
        def bad_request():
            raise ValueError("client error")
        with pytest.raises(ValueError):
            breaker.call(bad_request, failure_on=(OSError,))
        assert breaker.state == CircuitBreaker.CLOSED

    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"reset_timeout": -1.0},
        {"half_open_max_probes": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestWithRetries:
    def test_decorator_retries(self):
        attempts = []

        @with_retries(RetryPolicy(max_attempts=3, base_delay=0.0),
                      sleep=lambda _: None)
        def op(x):
            attempts.append(x)
            if len(attempts) < 2:
                raise OSError("transient")
            return x * 2

        assert op(21) == 42
        assert attempts == [21, 21]
        assert op.__name__ == "op"
