"""Tests for the retry/backoff/deadline primitives."""

import pytest

from repro.errors import (
    DeadlineExceededError,
    ResilienceError,
    RetryExhaustedError,
)
from repro.resilience import Deadline, RetryPolicy, retry_call, with_retries


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class Flaky:
    """Fails the first ``failures`` calls, then returns ``value``."""

    def __init__(self, failures, value="done", exc=OSError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom #{self.calls}")
        return self.value


class TestRetryPolicy:
    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3)
        assert list(policy.delays()) == [0.1, 0.2, 0.3]

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.5)
        assert policy.delay(3) == 2.5

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRetryCall:
    def test_success_after_retries(self):
        fn = Flaky(2)
        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.5, multiplier=2.0)
        assert retry_call(fn, policy=policy, sleep=slept.append) == "done"
        assert fn.calls == 3
        assert slept == [0.5, 1.0]

    def test_exhaustion_raises_and_chains(self):
        fn = Flaky(10)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            retry_call(fn, policy=policy, sleep=lambda _: None)
        assert fn.calls == 3
        assert isinstance(info.value.__cause__, OSError)
        assert isinstance(info.value, ResilienceError)

    def test_non_retryable_propagates_immediately(self):
        fn = Flaky(1, exc=ValueError)
        policy = RetryPolicy(max_attempts=5, retry_on=(OSError,))
        with pytest.raises(ValueError):
            retry_call(fn, policy=policy, sleep=lambda _: None)
        assert fn.calls == 1

    def test_deadline_stops_retry_loop(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        fn = Flaky(10)

        def sleep(seconds):
            clock.advance(2.0)  # each backoff blows the budget

        policy = RetryPolicy(max_attempts=5, base_delay=0.1)
        with pytest.raises(DeadlineExceededError):
            retry_call(fn, policy=policy, sleep=sleep, deadline=deadline)
        assert fn.calls == 1

    def test_arguments_are_forwarded(self):
        policy = RetryPolicy(max_attempts=1)
        assert retry_call(
            lambda a, b=0: a + b, 2, policy=policy, b=3
        ) == 5


class TestDeadline:
    def test_never_expires(self):
        deadline = Deadline.never()
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_expiry_with_fake_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(3.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="flush"):
            deadline.check("flush")


class TestWithRetries:
    def test_decorator_retries(self):
        attempts = []

        @with_retries(RetryPolicy(max_attempts=3, base_delay=0.0),
                      sleep=lambda _: None)
        def op(x):
            attempts.append(x)
            if len(attempts) < 2:
                raise OSError("transient")
            return x * 2

        assert op(21) == 42
        assert attempts == [21, 21]
        assert op.__name__ == "op"
