"""Profiling hooks: registration, delivery and misbehaving observers."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import hooks
from repro.obs.hooks import PhaseEvent

pytestmark = pytest.mark.obs


class TestRegistry:
    def test_register_fire_unsubscribe(self):
        events = []
        unsubscribe = hooks.register_profiler(events.append)
        assert hooks.has_profilers()
        event = PhaseEvent("planner", "edge", label="0-1", seconds=0.25)
        hooks.fire(event)
        unsubscribe()
        hooks.fire(PhaseEvent("planner", "edge"))
        assert events == [event]
        assert not hooks.has_profilers()

    def test_fire_without_profilers_is_a_noop(self):
        hooks.fire(PhaseEvent("kernel", "static_compute"))  # must not raise

    def test_event_key_and_defaults(self):
        event = PhaseEvent("store", "append")
        assert event.key() == ("store", "append")
        assert event.label == ""
        assert event.seconds is None

    def test_all_profilers_see_each_event(self):
        first, second = [], []
        hooks.register_profiler(first.append)
        hooks.register_profiler(second.append)
        hooks.fire(PhaseEvent("engine", "initial_compute", seconds=1.0))
        assert len(first) == len(second) == 1


class TestRaisingProfilers:
    def test_raising_profiler_is_dropped_not_propagated(self):
        healthy = []

        def broken(event):
            raise RuntimeError("observer bug")

        hooks.register_profiler(broken)
        hooks.register_profiler(healthy.append)
        hooks.fire(PhaseEvent("server", "query"))
        hooks.fire(PhaseEvent("server", "query"))
        # The healthy profiler kept both events; the broken one was
        # unregistered on its first failure and remembered.
        assert len(healthy) == 2
        (dropped,) = hooks.dropped_profilers()
        assert "observer bug" in dropped
        assert hooks.has_profilers()

    def test_reset_clears_profilers_and_failure_log(self):
        hooks.register_profiler(lambda event: 1 / 0)
        hooks.fire(PhaseEvent("server", "query"))
        assert hooks.dropped_profilers()
        hooks.reset_profilers()
        assert hooks.dropped_profilers() == []
        assert not hooks.has_profilers()


class TestFacadeIntegration:
    def test_phase_span_fires_hooks_without_a_runtime(self):
        """Profilers work standalone: no configure() call required."""
        events = []
        obs.register_profiler(events.append)
        assert not obs.enabled()
        with obs.phase_span("kernel", "static_compute", label="bfs"):
            pass
        (event,) = events
        assert event.key() == ("kernel", "static_compute")
        assert event.label == "bfs"
        assert event.seconds is not None and event.seconds >= 0.0

    def test_point_phase_fires_hooks_without_a_runtime(self):
        events = []
        obs.register_profiler(events.append)
        obs.phase("parallel", "hop", label="3", seconds=0.5)
        assert events == [PhaseEvent("parallel", "hop", "3", 0.5)]

    def test_disabled_and_unobserved_phase_span_is_the_null_context(self):
        assert obs.phase_span("kernel", "x") is obs.phase_span("kernel", "y")
