"""The /metrics HTTP endpoint and the trace-tree renderer."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, MetricsServer, render_trace_trees
from repro.obs.export import PROMETHEUS_CONTENT_TYPE

pytestmark = pytest.mark.obs


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers.get("Content-Type"), (
            response.read().decode("utf-8")
        )


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("requests_total", "Requests.", ("op",)).labels(
        op="query"
    ).inc(7)
    return reg


class TestMetricsServer:
    def test_serves_prometheus_text(self, registry):
        with MetricsServer(registry) as server:
            assert server.port not in (None, 0)  # ephemeral port bound
            status, content_type, body = fetch(f"{server.url}/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert 'requests_total{op="query"} 7' in body

    def test_root_path_aliases_metrics(self, registry):
        with MetricsServer(registry) as server:
            status, _, body = fetch(f"{server.url}/")
        assert status == 200
        assert "requests_total" in body

    def test_serves_json_snapshot(self, registry):
        with MetricsServer(registry) as server:
            status, content_type, body = fetch(f"{server.url}/metrics.json")
        assert status == 200
        assert content_type == "application/json"
        snapshot = json.loads(body)
        assert snapshot["requests_total"]["series"][0]["value"] == 7.0

    def test_healthz(self, registry):
        with MetricsServer(registry) as server:
            status, _, body = fetch(f"{server.url}/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_unknown_path_404s(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(f"{server.url}/nope")
        assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self, registry):
        with MetricsServer(registry) as server:
            registry.counter("requests_total", "Requests.", ("op",)).labels(
                op="query"
            ).inc()
            _, _, body = fetch(f"{server.url}/metrics")
        assert 'requests_total{op="query"} 8' in body

    def test_double_start_rejected(self, registry):
        server = MetricsServer(registry).start()
        try:
            with pytest.raises(ObservabilityError, match="already started"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry).start()
        server.stop()
        server.stop()  # must not raise


def span_doc(name, span_id, parent_id=None, trace_id="t1", start=0.0,
             duration=0.001, status="ok", attributes=None):
    return {
        "name": name, "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id, "start": start, "end": start + duration,
        "duration": duration, "status": status,
        "attributes": attributes or {},
    }


class TestRenderTraceTrees:
    def test_nested_rendering(self):
        spans = [
            span_doc("planner.evaluate", "02", parent_id="01", start=0.1),
            span_doc("server.query", "01", duration=0.5,
                     attributes={"label": "BFS:0", "outcome": "ok"}),
            span_doc("kernel.static_compute", "03", parent_id="02",
                     start=0.2),
        ]
        text = render_trace_trees(spans)
        lines = text.splitlines()
        assert lines[0] == "trace t1"
        assert lines[1].startswith("  server.query  500.000 ms")
        assert "(label=BFS:0, outcome=ok)" in lines[1]
        assert lines[2].startswith("    planner.evaluate  1.000 ms")
        assert lines[3].startswith("      kernel.static_compute")

    def test_error_status_is_flagged(self):
        text = render_trace_trees([
            span_doc("server.query", "01", status="error"),
        ])
        assert "[error]" in text

    def test_orphans_are_promoted_to_roots(self):
        # The parent span was lost (truncated log); the child must still
        # be rendered rather than silently dropped.
        text = render_trace_trees([
            span_doc("planner.edge", "07", parent_id="99"),
        ])
        assert "planner.edge" in text

    def test_limit_keeps_newest_traces(self):
        spans = [
            span_doc("a", "01", trace_id="t1"),
            span_doc("b", "02", trace_id="t2"),
            span_doc("c", "03", trace_id="t3"),
        ]
        text = render_trace_trees(spans, limit=2)
        assert "trace t1" not in text
        assert "trace t2" in text and "trace t3" in text

    def test_unfinished_span_renders_ellipsis(self):
        doc = span_doc("server.query", "01")
        doc["end"] = doc["duration"] = None
        assert "…" in render_trace_trees([doc])
