"""The ``repro obs`` CLI: scraping /metrics and tailing span logs."""

from __future__ import annotations

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, MetricsServer, Tracer

pytestmark = pytest.mark.obs


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


@pytest.fixture
def live_metrics():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests.", ("op",)).labels(
        op="query"
    ).inc(3)
    with MetricsServer(registry) as server:
        yield server


class TestObsDump:
    def test_dump_prints_prometheus_text(self, live_metrics):
        code, out, err = run_cli(
            ["obs", "dump", "--connect", f"127.0.0.1:{live_metrics.port}"]
        )
        assert code == 0, err
        assert 'repro_requests_total{op="query"} 3' in out

    def test_dump_json(self, live_metrics):
        code, out, _ = run_cli([
            "obs", "dump", "--json",
            "--connect", f"127.0.0.1:{live_metrics.port}",
        ])
        assert code == 0
        snapshot = json.loads(out)
        assert snapshot["repro_requests_total"]["series"][0]["value"] == 3.0

    def test_dump_unreachable_exits_2(self, live_metrics):
        port = live_metrics.port
        live_metrics.stop()
        code, out, err = run_cli(["obs", "dump", "--connect",
                                  f"127.0.0.1:{port}", "--timeout", "2"])
        assert code == 2
        assert out == ""
        assert "obs dump" in err


class TestObsTail:
    @pytest.fixture
    def span_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=path)
        with tracer.span("server.query", label="BFS:0"):
            with tracer.span("planner.evaluate"):
                pass
        with tracer.span("server.query", label="SSSP:1"):
            pass
        tracer.close()
        return path

    def test_tail_renders_trace_trees(self, span_file):
        code, out, _ = run_cli(["obs", "tail", str(span_file)])
        assert code == 0
        lines = out.splitlines()
        assert sum(line.startswith("trace ") for line in lines) == 2
        assert any("server.query" in line and "label=BFS:0" in line
                   for line in lines)
        assert any("planner.evaluate" in line for line in lines)

    def test_tail_limit(self, span_file):
        code, out, _ = run_cli(["obs", "tail", str(span_file),
                                "--limit", "1"])
        assert code == 0
        assert sum(line.startswith("trace ")
                   for line in out.splitlines()) == 1
        assert "SSSP:1" in out and "BFS:0" not in out

    def test_tail_missing_file_exits_2(self, tmp_path):
        code, _, err = run_cli(["obs", "tail", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "no such span file" in err

    def test_tail_corrupt_file_exits_1(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text("{broken\n")
        code, _, err = run_cli(["obs", "tail", str(path)])
        assert code == 1
        assert "malformed" in err
