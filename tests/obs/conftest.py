"""Fixtures for the observability tests.

The :mod:`repro.obs` runtime is process-global; ``clean_obs`` tears it
down around every test in this package so no configuration or profiler
hook leaks between tests.
"""

from __future__ import annotations

import pytest

from repro.testing import reset_observability


@pytest.fixture(autouse=True)
def clean_obs():
    reset_observability()
    yield
    reset_observability()
