"""The repro.obs facade: lifecycle, null backend and declared metrics."""

from __future__ import annotations

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs import NULL_SPAN, instruments
from repro.testing import FakeClock

pytestmark = pytest.mark.obs


class TestLifecycle:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is None
        assert obs.describe() == {"enabled": False}

    def test_configure_installs_and_disable_removes(self):
        runtime = obs.configure(sample_rate=0.5)
        assert obs.enabled()
        assert obs.current() is runtime
        assert obs.registry() is runtime.registry
        assert obs.tracer() is runtime.tracer
        description = obs.describe()
        assert description["enabled"] is True
        assert description["sample_rate"] == 0.5
        obs.disable()
        assert not obs.enabled()

    def test_registry_and_tracer_raise_when_disabled(self):
        with pytest.raises(ObservabilityError, match="not configured"):
            obs.registry()
        with pytest.raises(ObservabilityError, match="not configured"):
            obs.tracer()

    def test_configure_replaces_previous_runtime(self):
        first = obs.configure()
        second = obs.configure()
        assert obs.current() is second
        assert first is not second

    def test_configure_primes_key_series(self):
        obs.configure()
        text = obs.registry().render_prometheus()
        assert 'repro_task_outcomes_total{component="service",status="ok"} 0' in text
        assert 'repro_cache_hit_rate{cache="result"} 0' in text
        assert 'repro_requests_total{op="query"} 0' in text

    def test_reset_tears_down_runtime_and_profilers(self):
        obs.configure()
        obs.register_profiler(lambda event: None)
        obs.reset()
        assert not obs.enabled()
        assert not obs.hooks.has_profilers()


class TestDisabledHelpers:
    def test_metric_helpers_are_noops(self):
        obs.counter_inc("repro_requests_total", op="query")
        obs.gauge_set("repro_epoch", 3)
        obs.observe("repro_query_seconds", 0.1)
        obs.phase("parallel", "hop", seconds=0.1)
        obs.annotate(outcome="ok")

    def test_context_helpers_yield_the_null_span(self):
        with obs.span("work") as span:
            assert span is NULL_SPAN
        with obs.phase_span("kernel", "static_compute") as span:
            assert span is NULL_SPAN
            span.annotate(anything="accepted")
        with obs.timer("repro_query_seconds"):
            pass

    def test_register_collector_returns_noop_unsubscribe(self):
        unsubscribe = obs.register_collector(lambda registry: None)
        unsubscribe()  # must not raise


class TestMetricHelpers:
    def test_counter_inc_accumulates_per_label(self):
        obs.configure()
        obs.counter_inc("repro_requests_total", op="query")
        obs.counter_inc("repro_requests_total", 2, op="query")
        family = obs.registry().get("repro_requests_total")
        assert family.labels(op="query").value == 3.0

    def test_helpers_enforce_the_metric_kind(self):
        obs.configure()
        with pytest.raises(ObservabilityError, match="not a counter"):
            obs.counter_inc("repro_epoch")
        with pytest.raises(ObservabilityError, match="not a gauge"):
            obs.gauge_set("repro_requests_total", 1, op="query")
        with pytest.raises(ObservabilityError, match="not a histogram"):
            obs.observe("repro_epoch", 0.5)

    def test_undeclared_metric_names_are_refused(self):
        obs.configure()
        with pytest.raises(ObservabilityError, match="unknown instrument"):
            obs.counter_inc("repro_made_up_total")
        with pytest.raises(ObservabilityError, match="unknown instrument"):
            instruments.family(obs.registry(), "repro_made_up_total")

    def test_timer_observes_into_the_histogram(self):
        clock = FakeClock()
        obs.configure(clock=clock)
        with obs.timer("repro_query_seconds"):
            clock.advance(0.3)
        histogram = obs.registry().get("repro_query_seconds").default()
        assert histogram.count == 1
        assert histogram.sum == pytest.approx(0.3)

    def test_gauge_set_overwrites(self):
        obs.configure()
        obs.gauge_set("repro_epoch", 3)
        obs.gauge_set("repro_epoch", 7)
        assert obs.registry().get("repro_epoch").default().value == 7.0

    def test_collector_runs_at_scrape_time(self):
        obs.configure()

        def collector(registry):
            instruments.family(registry, "repro_epoch").default().set(42)

        unsubscribe = obs.register_collector(collector)
        assert "repro_epoch 42" in obs.registry().render_prometheus()
        unsubscribe()


class TestTracingHelpers:
    def test_phase_span_produces_span_and_histogram(self):
        clock = FakeClock()
        obs.configure(clock=clock)
        with obs.phase_span("planner", "edge", label="0-1", epoch=2) as span:
            clock.advance(0.02)
        assert span.name == "planner.edge"
        assert span.attributes == {"label": "0-1", "epoch": 2}
        assert span.duration == pytest.approx(0.02)
        family = obs.registry().get("repro_phase_seconds")
        child = family.labels(layer="planner", phase="edge")
        assert child.count == 1
        assert child.sum == pytest.approx(0.02)

    def test_annotate_reaches_the_active_span(self):
        obs.configure()
        with obs.span("server.query") as span:
            obs.annotate(outcome="ok")
        assert span.attributes["outcome"] == "ok"
        obs.annotate(ignored=True)  # no active span: silently dropped

    def test_spans_total_counts_finished_spans(self):
        obs.configure()
        with obs.span("a"):
            with obs.span("b"):
                pass
        counter = obs.registry().get("repro_spans_total").default()
        assert counter.value == 2.0

    def test_unsampled_phase_span_still_times_the_histogram(self):
        clock = FakeClock()
        obs.configure(sample_rate=0.0, clock=clock)
        with obs.phase_span("server", "query") as span:
            clock.advance(0.1)
        assert span is NULL_SPAN
        child = obs.registry().get("repro_phase_seconds").labels(
            layer="server", phase="query"
        )
        assert child.count == 1

    def test_describe_tracks_span_counts(self):
        obs.configure()
        with obs.span("work"):
            pass
        description = obs.describe()
        assert description["spans_started"] == 1
        assert description["spans_exported"] == 1
        assert description["metric_families"] > 0
