"""Structured tracing: nesting, sampling, clocks and the JSONL sink."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_SPAN, Tracer, read_spans
from repro.testing import FakeClock

pytestmark = pytest.mark.obs


class TestNesting:
    def test_children_share_the_trace_id(self):
        tracer = Tracer()
        with tracer.span("server.query") as root:
            with tracer.span("planner.evaluate") as planner:
                with tracer.span("kernel.static_compute") as kernel:
                    assert kernel.trace_id == root.trace_id
            assert planner.trace_id == root.trace_id
        assert root.parent_id is None
        assert planner.parent_id == root.span_id
        assert kernel.parent_id == planner.span_id

    def test_current_tracks_the_innermost_span(self):
        tracer = Tracer()
        assert tracer.current() is NULL_SPAN
        assert tracer.current_trace_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
                assert tracer.current_trace_id() == outer.trace_id
            assert tracer.current() is outer
        assert tracer.current() is NULL_SPAN

    def test_sibling_traces_get_distinct_ids(self):
        tracer = Tracer()
        with tracer.span("a") as first:
            pass
        with tracer.span("b") as second:
            pass
        assert first.trace_id != second.trace_id
        assert first.span_id != second.span_id

    def test_escaping_exception_marks_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("work") as span:
                raise ValueError("boom")
        assert span.status == "error"
        assert span.end is not None
        assert tracer.recent()[-1] is span

    def test_annotate_late_wins(self):
        tracer = Tracer()
        with tracer.span("work", outcome="pending") as span:
            span.annotate(outcome="ok", attempts=2)
        assert span.attributes == {"outcome": "ok", "attempts": 2}


class TestSampling:
    def test_rate_zero_records_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        with tracer.span("root") as root:
            # Descendants of an unsampled root skip the dice entirely.
            with tracer.span("child") as child:
                assert child is NULL_SPAN
        assert root is NULL_SPAN
        assert tracer.recent() == []
        assert tracer.started == 0

    def test_rate_one_records_everything(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(5):
            with tracer.span("root"):
                pass
        assert tracer.started == tracer.exported == 5

    def test_fractional_sampling_replays_with_the_seed(self):
        def decisions(seed):
            tracer = Tracer(sample_rate=0.5, seed=seed)
            out = []
            for _ in range(64):
                with tracer.span("root") as span:
                    out.append(span is not NULL_SPAN)
            return out

        assert decisions(seed=3) == decisions(seed=3)
        assert decisions(seed=3) != decisions(seed=4)
        kept = sum(decisions(seed=3))
        assert 0 < kept < 64

    def test_invalid_rate_rejected(self):
        with pytest.raises(ObservabilityError, match="within"):
            Tracer(sample_rate=1.5)
        with pytest.raises(ObservabilityError, match="within"):
            Tracer(sample_rate=-0.1)


class TestClockAndBuffers:
    def test_fake_clock_gives_exact_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work") as span:
            assert span.duration is None
            clock.advance(1.25)
        assert span.duration == 1.25

    def test_ring_buffer_keeps_the_most_recent(self):
        tracer = Tracer(max_recent=3)
        for index in range(6):
            with tracer.span(f"span-{index}"):
                pass
        assert [span.name for span in tracer.recent()] == [
            "span-3", "span-4", "span-5",
        ]
        assert [span.name for span in tracer.recent(limit=2)] == [
            "span-4", "span-5",
        ]
        assert tracer.exported == 6

    def test_on_finish_sees_every_finished_span(self):
        finished = []
        tracer = Tracer(on_finish=finished.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in finished] == ["inner", "outer"]


class TestSink:
    def test_path_sink_writes_one_json_line_per_span(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=sink, clock=FakeClock())
        with tracer.span("outer", label="x"):
            with tracer.span("inner"):
                pass
        tracer.close()
        lines = sink.read_text().splitlines()
        assert len(lines) == 2
        docs = [json.loads(line) for line in lines]
        # Children finish first; both lines carry the full span record.
        assert [doc["name"] for doc in docs] == ["inner", "outer"]
        assert docs[0]["trace_id"] == docs[1]["trace_id"]
        assert docs[1]["attributes"] == {"label": "x"}
        assert docs[0]["duration"] is not None

    def test_file_object_sink_is_not_closed(self):
        buffer = io.StringIO()
        tracer = Tracer(sink=buffer)
        with tracer.span("work"):
            pass
        tracer.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["name"] == "work"

    def test_read_spans_resumes_from_offset(self, tmp_path):
        sink = tmp_path / "spans.jsonl"
        tracer = Tracer(sink=sink)
        with tracer.span("first"):
            pass
        spans, offset = read_spans(sink)
        assert [span["name"] for span in spans] == ["first"]
        with tracer.span("second"):
            pass
        tracer.close()
        more, final = read_spans(sink, offset)
        assert [span["name"] for span in more] == ["second"]
        assert final == sink.stat().st_size
        assert read_spans(sink, final) == ([], final)

    def test_read_spans_leaves_partial_trailing_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        whole = json.dumps({"name": "done"})
        path.write_text(whole + "\n" + '{"name": "tor')
        spans, offset = read_spans(path)
        assert [span["name"] for span in spans] == ["done"]
        assert offset == len(whole) + 1
        # Completing the line makes it visible from the saved offset.
        with path.open("a") as fh:
            fh.write('n"}\n')
        more, _ = read_spans(path, offset)
        assert [span["name"] for span in more] == ["torn"]

    def test_read_spans_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(ObservabilityError, match="malformed"):
            read_spans(path)
        path.write_text("[1, 2]\n")
        with pytest.raises(ObservabilityError, match="not an object"):
            read_spans(path)
