"""The metrics registry: semantics, exports and thread-safety."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        counter = Counter()
        with pytest.raises(ObservabilityError, match="only go up"):
            counter.inc(-1)
        assert counter.value == 0.0

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(boundaries=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.cumulative() == [
            (1.0, 2), (5.0, 3), (float("inf"), 4),
        ]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(104.2)

    def test_histogram_boundary_is_inclusive_upper_edge(self):
        histogram = Histogram(boundaries=(1.0,))
        histogram.observe(1.0)
        assert histogram.cumulative()[0] == (1.0, 1)

    def test_histogram_rejects_bad_boundaries(self):
        with pytest.raises(ObservabilityError, match="at least one"):
            Histogram(boundaries=())
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            Histogram(boundaries=(2.0, 1.0))
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            Histogram(boundaries=(1.0, 1.0))

    def test_default_buckets_span_sub_ms_to_ten_seconds(self):
        assert DEFAULT_BUCKETS[0] == 0.0005
        assert DEFAULT_BUCKETS[-1] == 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "requests", ("op",))
        again = registry.counter("requests_total", "requests", ("op",))
        assert first is again

    def test_conflicting_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("thing")

    def test_conflicting_labels_raise(self):
        registry = MetricsRegistry()
        registry.counter("thing", labelnames=("a",))
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.counter("thing", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="invalid metric"):
            registry.counter("bad-name")
        with pytest.raises(ObservabilityError, match="invalid metric"):
            registry.counter("1starts_with_digit")
        with pytest.raises(ObservabilityError, match="invalid metric"):
            registry.counter("ok", labelnames=("bad label",))

    def test_labels_must_match_declaration(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labelnames=("op",))
        with pytest.raises(ObservabilityError, match="takes labels"):
            family.labels(verb="query")
        with pytest.raises(ObservabilityError, match="takes labels"):
            family.labels()

    def test_default_requires_label_free_family(self):
        registry = MetricsRegistry()
        labelled = registry.counter("requests_total", labelnames=("op",))
        with pytest.raises(ObservabilityError, match="requires labels"):
            labelled.default()
        plain = registry.counter("errors_total")
        plain.default().inc()
        assert plain.default().value == 1.0

    def test_children_one_per_label_combination(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", labelnames=("op",))
        family.labels(op="query").inc(3)
        family.labels(op="ingest").inc()
        assert family.labels(op="query") is family.labels(op="query")
        assert [key for key, _ in family.children()] == [
            ("ingest",), ("query",),
        ]


class TestExports:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests.", ("op",)).labels(
            op="query"
        ).inc(2)
        registry.gauge("epoch", "Current epoch.").default().set(4)
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0)
        ).default()
        histogram.observe(0.05)
        histogram.observe(5.0)
        return registry

    def test_snapshot_is_json_able(self):
        snapshot = self.make_registry().snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["requests_total"]["kind"] == "counter"
        (series,) = snapshot["requests_total"]["series"]
        assert series == {"labels": {"op": "query"}, "value": 2.0}
        buckets = snapshot["latency_seconds"]["series"][0]["buckets"]
        assert [b["count"] for b in buckets] == [1, 1, 2]

    def test_prometheus_text_format(self):
        text = self.make_registry().render_prometheus()
        lines = text.splitlines()
        assert "# HELP requests_total Requests." in lines
        assert "# TYPE requests_total counter" in lines
        assert 'requests_total{op="query"} 2' in lines
        assert "# TYPE epoch gauge" in lines
        assert "epoch 4" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 1' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 2' in lines
        assert "latency_seconds_sum 5.05" in lines
        assert "latency_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("weird_total", labelnames=("what",)).labels(
            what='say "hi"\nback\\slash'
        ).inc()
        text = registry.render_prometheus()
        assert r'weird_total{what="say \"hi\"\nback\\slash"} 1' in text

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help="line one\nline two")
        assert r"# HELP c_total line one\nline two" in (
            registry.render_prometheus()
        )

    def test_collectors_refresh_before_export(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("entries").default()
        calls = []

        def collector(reg):
            calls.append(reg)
            gauge.set(len(calls))

        unsubscribe = registry.register_collector(collector)
        assert registry.snapshot()["entries"]["series"][0]["value"] == 1.0
        assert "entries 2" in registry.render_prometheus()
        unsubscribe()
        assert "entries 2" in registry.render_prometheus()
        assert len(calls) == 2
        assert all(reg is registry for reg in calls)


class TestConcurrency:
    def test_concurrent_counter_updates_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total").default()
        threads, per_thread = 8, 500
        barrier = threading.Barrier(threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * per_thread

    def test_concurrent_histogram_updates_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", buckets=(0.5, 1.5)
        ).default()
        threads, per_thread = 8, 300
        barrier = threading.Barrier(threads)

        def worker(value):
            barrier.wait()
            for _ in range(per_thread):
                histogram.observe(value)

        pool = [
            threading.Thread(target=worker, args=(0.25 if i % 2 else 1.0,))
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = threads * per_thread
        assert histogram.count == total
        assert histogram.cumulative() == [
            (0.5, total // 2), (1.5, total), (float("inf"), total),
        ]
        assert histogram.sum == pytest.approx(
            (0.25 + 1.0) * (total // 2)
        )

    def test_concurrent_child_creation_single_instance(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", labelnames=("op",))
        children = [None] * 8
        barrier = threading.Barrier(len(children))

        def worker(index):
            barrier.wait()
            child = family.labels(op="query")
            child.inc()
            children[index] = child

        pool = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(children))
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert all(child is children[0] for child in children)
        assert children[0].value == len(children)
