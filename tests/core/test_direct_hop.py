"""Tests for the Direct-Hop evaluator."""

from hypothesis import given, settings

from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.graph.csr import CSRGraph
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from tests.conftest import assert_values_equal
from tests.strategies import evolving_graphs

WF = HashWeights(max_weight=8, seed=7)


class TestDirectHop:
    def test_matches_scratch_every_snapshot(self, small_evolving, algorithm):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = DirectHopEvaluator(decomp, algorithm, 3, weight_fn=WF).run()
        assert result.strategy == "direct-hop"
        for i in range(small_evolving.num_snapshots):
            g = small_evolving.snapshot_csr(i, weight_fn=WF)
            want = static_compute(g, algorithm, 3).values
            assert_values_equal(
                result.snapshot_values[i], want, f"{algorithm.name}@{i}"
            )

    def test_bookkeeping(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = DirectHopEvaluator(decomp, get_algorithm("BFS"), 3, weight_fn=WF).run()
        n = small_evolving.num_snapshots
        assert len(result.per_hop_seconds) == n
        assert result.stabilisations == n
        assert result.additions_processed == decomp.total_direct_hop_additions()
        assert result.critical_path_seconds == max(result.per_hop_seconds)
        assert result.timer.seconds("initial_compute") > 0
        assert result.timer.seconds("incremental_add") > 0

    def test_keep_values_false(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = DirectHopEvaluator(
            decomp, get_algorithm("BFS"), 3, weight_fn=WF
        ).run(keep_values=False)
        assert result.snapshot_values == []
        assert len(result.per_hop_seconds) == small_evolving.num_snapshots

    def test_base_state_is_common_graph_fixpoint(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        evaluator = DirectHopEvaluator(decomp, get_algorithm("SSSP"), 3, weight_fn=WF)
        state = evaluator.base_state()
        want = static_compute(decomp.common_csr(WF), get_algorithm("SSSP"), 3).values
        assert_values_equal(state.values, want)

    def test_hops_do_not_interfere(self, small_evolving):
        """Each hop starts from the same base state (no cross-talk)."""
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        alg = get_algorithm("SSWP")
        full = DirectHopEvaluator(decomp, alg, 3, weight_fn=WF).run()
        # Evaluating a single later snapshot in isolation gives the same
        # values as evaluating them all in sequence.
        single_decomp = CommonGraphDecomposition(
            decomp.num_vertices, decomp.common, [decomp.surpluses[5]]
        )
        single = DirectHopEvaluator(single_decomp, alg, 3, weight_fn=WF).run()
        assert_values_equal(single.snapshot_values[0], full.snapshot_values[5])


@settings(max_examples=20, deadline=None)
@given(evolving_graphs(max_batches=4))
def test_direct_hop_random(eg):
    alg = get_algorithm("SSNP")
    decomp = CommonGraphDecomposition.from_evolving(eg)
    result = DirectHopEvaluator(decomp, alg, 0, weight_fn=WF).run()
    for i in range(eg.num_snapshots):
        g = CSRGraph.from_edge_set(eg.snapshot_edges(i), eg.num_vertices, weight_fn=WF)
        want = static_compute(g, alg, 0).values
        assert_values_equal(result.snapshot_values[i], want, f"snapshot {i}")
