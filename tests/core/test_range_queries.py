"""Range queries over snapshot windows (the paper's future-work item).

``CommonGraphDecomposition.restrict`` roots a window's evaluation at
that window's intermediate common graph; ``VersionController.evaluate``
exposes the one-call API.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.errors import ScheduleError, SnapshotError
from repro.evolving.version_control import VersionController
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from tests.conftest import assert_values_equal
from tests.strategies import evolving_graphs

WF = HashWeights(max_weight=8, seed=7)


class TestRestrict:
    def test_window_common_is_interval_icg(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        window = decomp.restrict(2, 5)
        assert window.common == decomp.interval_edges(2, 5)
        assert window.num_snapshots == 4

    def test_window_reconstructs_snapshots(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        window = decomp.restrict(3, 6)
        for k in range(4):
            assert window.snapshot_edges(k) == small_evolving.snapshot_edges(3 + k)

    def test_window_core_is_larger(self, small_evolving):
        """The window's shared core contains the global common graph, so
        per-snapshot hops stream fewer additions."""
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        window = decomp.restrict(4, 6)
        assert decomp.common.issubset(window.common)
        total_window = window.total_direct_hop_additions()
        total_global = sum(len(decomp.surpluses[t]) for t in range(4, 7))
        assert total_window <= total_global

    def test_single_snapshot_window(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        window = decomp.restrict(5, 5)
        assert window.num_snapshots == 1
        assert len(window.surpluses[0]) == 0
        assert window.common == small_evolving.snapshot_edges(5)

    def test_full_range_is_identity(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        window = decomp.restrict(0, small_evolving.num_snapshots - 1)
        assert window.common == decomp.common
        assert window.surpluses == decomp.surpluses

    def test_invalid_range(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        with pytest.raises(SnapshotError):
            decomp.restrict(5, 2)
        with pytest.raises(SnapshotError):
            decomp.restrict(0, 99)


class TestVersionControllerEvaluate:
    def test_range_values_match_scratch(self, small_evolving, algorithm):
        vc = VersionController(small_evolving, weight_fn=WF)
        result = vc.evaluate(algorithm, source=3, first=2, last=5)
        assert len(result.snapshot_values) == 4
        for k in range(4):
            want = static_compute(
                small_evolving.snapshot_csr(2 + k, weight_fn=WF), algorithm, 3
            ).values
            assert_values_equal(result.snapshot_values[k], want, f"window@{k}")

    def test_default_range_is_everything(self, small_evolving):
        vc = VersionController(small_evolving, weight_fn=WF)
        result = vc.evaluate(get_algorithm("BFS"), source=3)
        assert len(result.snapshot_values) == small_evolving.num_snapshots

    def test_strategies_agree(self, small_evolving):
        vc = VersionController(small_evolving, weight_fn=WF)
        a = vc.evaluate(get_algorithm("SSSP"), 3, 1, 6, strategy="direct-hop")
        b = vc.evaluate(get_algorithm("SSSP"), 3, 1, 6, strategy="work-sharing")
        for x, y in zip(a.snapshot_values, b.snapshot_values):
            assert_values_equal(x, y)

    def test_unknown_strategy(self, small_evolving):
        vc = VersionController(small_evolving, weight_fn=WF)
        with pytest.raises(ScheduleError):
            vc.evaluate(get_algorithm("BFS"), 3, strategy="telepathy")

    def test_bad_range(self, small_evolving):
        vc = VersionController(small_evolving, weight_fn=WF)
        with pytest.raises(SnapshotError):
            vc.evaluate(get_algorithm("BFS"), 3, first=4, last=2)

    def test_range_does_less_work_than_global(self, small_evolving):
        """Evaluating a late window via restrict streams no more
        additions than hopping from the global common graph."""
        vc = VersionController(small_evolving, weight_fn=WF)
        window = vc.evaluate(get_algorithm("BFS"), 3, 5, 7, strategy="direct-hop")
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        global_hops = DirectHopEvaluator(
            decomp, get_algorithm("BFS"), 3, weight_fn=WF
        ).run(keep_values=False)
        per_snapshot_global = sum(
            len(decomp.surpluses[t]) for t in (5, 6, 7)
        )
        assert window.additions_processed <= per_snapshot_global
        assert global_hops.additions_processed >= window.additions_processed


@settings(max_examples=20, deadline=None)
@given(evolving_graphs(max_batches=4), st.data())
def test_restrict_random(eg, data):
    decomp = CommonGraphDecomposition.from_evolving(eg)
    n = eg.num_snapshots
    first = data.draw(st.integers(0, n - 1))
    last = data.draw(st.integers(first, n - 1))
    window = decomp.restrict(first, last)
    # Window invariants: core ⊆ every window snapshot; reconstruction.
    for k in range(window.num_snapshots):
        edges = eg.snapshot_edges(first + k)
        assert window.common.issubset(edges)
        assert window.snapshot_edges(k) == edges
