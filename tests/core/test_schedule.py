"""Tests for ScheduleTree (validation, cost, bypass compression)."""

import pytest
from hypothesis import given, settings

from repro.core.common import CommonGraphDecomposition
from repro.core.schedule import ScheduleTree
from repro.core.steiner import direct_hop_tree, greedy_steiner
from repro.core.triangular_grid import TriangularGrid
from repro.errors import ScheduleError
from tests.strategies import evolving_graphs


def grid_for(eg):
    return TriangularGrid(CommonGraphDecomposition.from_evolving(eg))


@pytest.fixture
def grid(small_evolving):
    return grid_for(small_evolving)


class TestValidation:
    def test_direct_hop_is_valid(self, grid):
        direct_hop_tree(grid).validate(grid)

    def test_wrong_root(self, grid):
        tree = ScheduleTree(root=(0, 0))
        with pytest.raises(ScheduleError, match="root"):
            tree.validate(grid)

    def test_missing_leaf(self, grid):
        tree = ScheduleTree(root=grid.root)
        tree.parent[(0, 0)] = grid.root
        with pytest.raises(ScheduleError, match="not covered"):
            tree.validate(grid)

    def test_non_containment_edge(self, grid):
        tree = direct_hop_tree(grid)
        tree.parent[(0, 0)] = (1, 1)
        with pytest.raises(ScheduleError, match="containment"):
            tree.validate(grid)

    def test_disconnected_subtree(self, grid):
        tree = direct_hop_tree(grid)
        # (0, 1) hangs off (0, 2), which is not in the tree.
        tree.parent[(0, 1)] = (0, 2)
        with pytest.raises(ScheduleError, match="disconnected"):
            tree.validate(grid)

    def test_add_edge_guards(self, grid):
        tree = ScheduleTree(root=grid.root)
        with pytest.raises(ScheduleError, match="parent .* not in tree"):
            tree.add_edge((0, 1), (0, 0))
        tree.add_edge(grid.root, (0, 0))
        with pytest.raises(ScheduleError, match="already in tree"):
            tree.add_edge(grid.root, (0, 0))


class TestStructure:
    def test_edges_bfs_order(self, grid):
        tree = greedy_steiner(grid)
        edges = list(tree.edges())
        seen = {tree.root}
        for parent, child in edges:
            assert parent in seen  # parents always emitted first
            seen.add(child)
        assert len(edges) == len(tree.parent)

    def test_children_map(self, grid):
        tree = direct_hop_tree(grid)
        children = tree.children_map()
        assert sorted(children[grid.root]) == grid.leaves
        for leaf in grid.leaves:
            assert children[leaf] == []

    def test_cost_direct_hop(self, grid):
        tree = direct_hop_tree(grid)
        assert tree.cost(grid) == grid.decomposition.total_direct_hop_additions()

    def test_num_stabilisations(self, grid):
        assert direct_hop_tree(grid).num_stabilisations() == grid.n


class TestCompression:
    def test_bypass_chain(self, grid):
        """root -> (0,1) -> (0,0) plus other leaves: (0,1) is bypassed
        when it only forwards to one child."""
        tree = ScheduleTree(root=grid.root)
        tree.parent[(0, 1)] = grid.root
        tree.parent[(0, 0)] = (0, 1)
        for i in range(1, grid.n):
            tree.parent[(i, i)] = grid.root
        compressed = tree.compressed(grid)
        assert (0, 1) not in compressed.parent
        assert compressed.parent[(0, 0)] == grid.root
        compressed.validate(grid)

    def test_bypass_preserves_cost(self, grid):
        tree = greedy_steiner(grid, compress=False)
        compressed = tree.compressed(grid)
        assert compressed.cost(grid) == tree.cost(grid)
        assert compressed.num_stabilisations() <= tree.num_stabilisations()

    def test_branching_node_kept(self, grid):
        tree = ScheduleTree(root=grid.root)
        tree.parent[(0, 1)] = grid.root
        tree.parent[(0, 0)] = (0, 1)
        tree.parent[(1, 1)] = (0, 1)
        for i in range(2, grid.n):
            tree.parent[(i, i)] = grid.root
        compressed = tree.compressed(grid)
        assert (0, 1) in compressed.parent  # two children -> kept

    def test_long_chain_fully_bypassed(self, grid):
        """A full adjacency path to one leaf compresses to a single jump."""
        n = grid.n
        tree = ScheduleTree(root=grid.root)
        node = grid.root
        while node != (0, 0):
            child = (node[0], node[1] - 1)
            tree.parent[child] = node
            node = child
        for i in range(1, n):
            tree.parent[(i, i)] = grid.root
        compressed = tree.compressed(grid)
        assert compressed.parent[(0, 0)] == grid.root
        interior = [k for k in compressed.parent if k[0] != k[1]]
        assert interior == []


@settings(max_examples=25)
@given(evolving_graphs(max_batches=4))
def test_compression_random(eg):
    grid = grid_for(eg)
    tree = greedy_steiner(grid, compress=False)
    compressed = tree.compressed(grid)
    compressed.validate(grid)
    assert compressed.cost(grid) == tree.cost(grid)
    # No interior node may have exactly one child after compression.
    children = compressed.children_map()
    for node, kids in children.items():
        if node != grid.root and node not in grid.leaves:
            assert len(kids) != 1
