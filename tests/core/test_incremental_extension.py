"""Equivalence laws behind the service's incremental maintenance.

Two properties keep the live decomposition honest:

* ``restrict(i, j)`` must behave exactly like decomposing the snapshot
  slice ``i..j`` from scratch (``from_snapshots``) — same common graph,
  same surpluses, same interval surpluses everywhere;
* ``extended(new_edges)`` (one Triangular-Grid column appended
  incrementally) must be indistinguishable from rebuilding the whole
  decomposition from all snapshots.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.common import CommonGraphDecomposition
from repro.errors import SnapshotError
from repro.graph.edgeset import EdgeSet

from tests.strategies import evolving_graphs


def all_snapshots(evolving):
    return [evolving.snapshot_edges(i) for i in range(evolving.num_snapshots)]


def assert_decompositions_equal(a, b, context=""):
    __tracebackhide__ = True
    assert a.num_vertices == b.num_vertices, context
    assert a.num_snapshots == b.num_snapshots, context
    assert a.common == b.common, f"{context}: common graphs differ"
    for index, (sa, sb) in enumerate(zip(a.surpluses, b.surpluses)):
        assert sa == sb, f"{context}: surplus {index} differs"
    n = a.num_snapshots
    for i in range(n):
        for j in range(i, n):
            assert a.interval_surplus(i, j) == b.interval_surplus(i, j), (
                f"{context}: interval surplus ({i}, {j}) differs"
            )


class TestRestrictEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(evolving_graphs(), st.data())
    def test_restrict_equals_from_snapshots_on_slice(self, evolving, data):
        """``restrict(i, j)`` ≡ ``from_snapshots(snapshots[i..j])``."""
        decomposition = CommonGraphDecomposition.from_evolving(evolving)
        n = decomposition.num_snapshots
        first = data.draw(st.integers(0, n - 1), label="first")
        last = data.draw(st.integers(first, n - 1), label="last")
        snapshots = all_snapshots(evolving)
        direct = CommonGraphDecomposition.from_snapshots(
            evolving.num_vertices, snapshots[first:last + 1]
        )
        assert_decompositions_equal(
            decomposition.restrict(first, last), direct,
            f"restrict({first}, {last})",
        )

    @settings(max_examples=30, deadline=None)
    @given(evolving_graphs(), st.data())
    def test_restrict_with_warm_interval_cache(self, evolving, data):
        """A warmed parent cache (seeded into the child) changes nothing."""
        decomposition = CommonGraphDecomposition.from_evolving(evolving)
        n = decomposition.num_snapshots
        # Touch every interval so restrict() has a full cache to seed from.
        for i in range(n):
            for j in range(i, n):
                decomposition.interval_surplus(i, j)
        first = data.draw(st.integers(0, n - 1), label="first")
        last = data.draw(st.integers(first, n - 1), label="last")
        snapshots = all_snapshots(evolving)
        direct = CommonGraphDecomposition.from_snapshots(
            evolving.num_vertices, snapshots[first:last + 1]
        )
        assert_decompositions_equal(
            decomposition.restrict(first, last), direct, "warm restrict"
        )


class TestExtendedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(evolving_graphs(max_batches=4))
    def test_extension_matches_from_scratch_rebuild(self, evolving):
        """Growing one column at a time ≡ decomposing all snapshots."""
        snapshots = all_snapshots(evolving)
        live = CommonGraphDecomposition.from_snapshots(
            evolving.num_vertices, snapshots[:1]
        )
        for count in range(2, len(snapshots) + 1):
            live = live.extended(snapshots[count - 1])
            rebuilt = CommonGraphDecomposition.from_snapshots(
                evolving.num_vertices, snapshots[:count]
            )
            assert_decompositions_equal(live, rebuilt,
                                        f"after snapshot {count - 1}")

    @settings(max_examples=30, deadline=None)
    @given(evolving_graphs(max_batches=3))
    def test_extension_with_warm_interval_cache(self, evolving):
        """Cache entries carried over by ``extended`` stay correct."""
        snapshots = all_snapshots(evolving)
        live = CommonGraphDecomposition.from_snapshots(
            evolving.num_vertices, snapshots[:1]
        )
        for count in range(2, len(snapshots) + 1):
            # Warm every interval *before* extending, so carried-over
            # entries (not recomputations) are what gets checked.
            n = live.num_snapshots
            for i in range(n):
                for j in range(i, n):
                    live.interval_surplus(i, j)
            live = live.extended(snapshots[count - 1])
            rebuilt = CommonGraphDecomposition.from_snapshots(
                evolving.num_vertices, snapshots[:count]
            )
            assert_decompositions_equal(live, rebuilt,
                                        f"warm, after snapshot {count - 1}")

    def test_extension_rejects_out_of_range_vertices(self):
        decomposition = CommonGraphDecomposition.from_snapshots(
            4, [EdgeSet.from_pairs([(0, 1), (1, 2)])]
        )
        with pytest.raises(SnapshotError):
            decomposition.extended(EdgeSet.from_pairs([(0, 7)]))

    def test_extension_handles_total_turnover(self):
        """A new snapshot sharing no edges empties the common graph."""
        decomposition = CommonGraphDecomposition.from_snapshots(
            4, [EdgeSet.from_pairs([(0, 1), (1, 2)])]
        )
        extended = decomposition.extended(EdgeSet.from_pairs([(2, 3)]))
        rebuilt = CommonGraphDecomposition.from_snapshots(
            4,
            [EdgeSet.from_pairs([(0, 1), (1, 2)]),
             EdgeSet.from_pairs([(2, 3)])],
        )
        assert_decompositions_equal(extended, rebuilt, "total turnover")
        assert not extended.common
