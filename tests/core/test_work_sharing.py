"""Tests for the Work-Sharing evaluator (schedule-tree execution)."""

import pytest
from hypothesis import given, settings

from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.core.schedule import ScheduleTree
from repro.core.steiner import direct_hop_tree, exact_steiner, greedy_steiner
from repro.core.triangular_grid import TriangularGrid
from repro.errors import ScheduleError
from repro.graph.csr import CSRGraph
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from tests.conftest import assert_values_equal
from tests.strategies import evolving_graphs

WF = HashWeights(max_weight=8, seed=7)


class TestWorkSharing:
    def test_matches_scratch_every_snapshot(self, small_evolving, algorithm):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = WorkSharingEvaluator(decomp, algorithm, 3, weight_fn=WF).run()
        assert result.strategy == "work-sharing"
        for i in range(small_evolving.num_snapshots):
            g = small_evolving.snapshot_csr(i, weight_fn=WF)
            want = static_compute(g, algorithm, 3).values
            assert_values_equal(
                result.snapshot_values[i], want, f"{algorithm.name}@{i}"
            )

    def test_default_schedule_is_greedy(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        evaluator = WorkSharingEvaluator(decomp, get_algorithm("BFS"), 3, weight_fn=WF)
        grid = TriangularGrid(decomp)
        assert evaluator.schedule.cost(grid) == greedy_steiner(grid).cost(grid)

    def test_additions_processed_equals_schedule_cost(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        evaluator = WorkSharingEvaluator(decomp, get_algorithm("BFS"), 3, weight_fn=WF)
        result = evaluator.run(keep_values=False)
        grid = TriangularGrid(decomp)
        assert result.additions_processed == evaluator.schedule.cost(grid)
        assert result.stabilisations == evaluator.schedule.num_stabilisations()
        # Work sharing strictly saves additions on this workload.
        dh = DirectHopEvaluator(decomp, get_algorithm("BFS"), 3, weight_fn=WF).run(
            keep_values=False
        )
        assert result.additions_processed < dh.additions_processed

    def test_explicit_direct_hop_schedule(self, small_evolving, algorithm):
        """Work-sharing engine with a star schedule == Direct-Hop values."""
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        grid = TriangularGrid(decomp)
        result = WorkSharingEvaluator(
            decomp, algorithm, 3, weight_fn=WF, schedule=direct_hop_tree(grid)
        ).run()
        dh = DirectHopEvaluator(decomp, algorithm, 3, weight_fn=WF).run()
        for a, b in zip(result.snapshot_values, dh.snapshot_values):
            assert_values_equal(a, b)

    def test_invalid_schedule_rejected(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        bogus = ScheduleTree(root=(0, 0))
        with pytest.raises(ScheduleError):
            WorkSharingEvaluator(
                decomp, get_algorithm("BFS"), 3, weight_fn=WF, schedule=bogus
            )

    def test_single_snapshot(self):
        from repro.evolving.snapshots import EvolvingGraph
        from repro.graph.edgeset import EdgeSet

        eg = EvolvingGraph(4, EdgeSet.from_pairs([(0, 1), (1, 2)]))
        decomp = CommonGraphDecomposition.from_evolving(eg)
        result = WorkSharingEvaluator(
            decomp, get_algorithm("BFS"), 0, weight_fn=WF
        ).run()
        assert len(result.snapshot_values) == 1
        assert result.snapshot_values[0].tolist()[:3] == [0.0, 1.0, 2.0]


@settings(max_examples=20, deadline=None)
@given(evolving_graphs(max_batches=4))
@pytest.mark.parametrize("schedule_kind", ["greedy", "exact", "uncompressed"])
def test_work_sharing_random_schedules(schedule_kind, eg):
    """Any valid schedule must produce identical per-snapshot values."""
    alg = get_algorithm("SSSP")
    decomp = CommonGraphDecomposition.from_evolving(eg)
    grid = TriangularGrid(decomp)
    if schedule_kind == "greedy":
        schedule = greedy_steiner(grid)
    elif schedule_kind == "exact":
        schedule = exact_steiner(grid)
    else:
        schedule = greedy_steiner(grid, compress=False)
    result = WorkSharingEvaluator(
        decomp, alg, 0, weight_fn=WF, schedule=schedule
    ).run()
    for i in range(eg.num_snapshots):
        g = CSRGraph.from_edge_set(eg.snapshot_edges(i), eg.num_vertices, weight_fn=WF)
        want = static_compute(g, alg, 0).values
        assert_values_equal(result.snapshot_values[i], want, f"{schedule_kind}@{i}")
