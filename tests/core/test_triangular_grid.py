"""Tests for the Triangular Grid representation."""

import pytest
from hypothesis import given, settings

from repro.core.common import CommonGraphDecomposition
from repro.core.triangular_grid import TriangularGrid
from repro.errors import ScheduleError
from tests.strategies import evolving_graphs


def grid_for(eg):
    return TriangularGrid(CommonGraphDecomposition.from_evolving(eg))


@settings(max_examples=30)
@given(evolving_graphs(max_batches=4))
def test_structure_invariants(eg):
    grid = grid_for(eg)
    n = grid.n
    nodes = list(grid.nodes())
    # Node count: triangular number; root first.
    assert len(nodes) == n * (n + 1) // 2 == grid.num_nodes()
    assert nodes[0] == grid.root == (0, n - 1)
    assert grid.leaves == [(i, i) for i in range(n)]
    # Root surplus is empty by construction.
    assert grid.surplus_size(grid.root) == 0
    for node in nodes:
        kids = grid.children(node)
        i, j = node
        if i == j:
            assert kids == []
        else:
            assert len(kids) == 2
        for child in kids:
            # surplus grows monotonically downward
            assert grid.surplus(node).issubset(grid.surplus(child))
            assert grid.weight(node, child) == (
                grid.surplus_size(child) - grid.surplus_size(node)
            )
            assert grid.label(node, child) == (
                grid.surplus(child) - grid.surplus(node)
            )
            assert node in grid.parents(child)


@settings(max_examples=30)
@given(evolving_graphs(max_batches=4))
def test_telescoping_path_costs(eg):
    """All downward paths between two nodes cost the same."""
    grid = grid_for(eg)
    if grid.n < 3:
        return
    root = grid.root
    for leaf in grid.leaves:
        # cost of any adjacency path == the direct jump weight
        direct = grid.weight(root, leaf) if root != leaf else 0
        node = root
        total = 0
        while node != leaf:
            child = next(
                c for c in grid.children(node) if TriangularGrid.contains(c, leaf)
            )
            total += grid.weight(node, child)
            node = child
        assert total == direct


class TestEdgesAndErrors:
    def test_grid_edges_count(self, small_evolving):
        grid = grid_for(small_evolving)
        n = grid.n
        edges = list(grid.grid_edges())
        # Every non-leaf node has exactly 2 children.
        assert len(edges) == 2 * (grid.num_nodes() - n)

    def test_parents_of_root_empty(self, small_evolving):
        grid = grid_for(small_evolving)
        assert grid.parents(grid.root) == []

    def test_invalid_node_rejected(self, small_evolving):
        grid = grid_for(small_evolving)
        with pytest.raises(ScheduleError):
            grid.children((3, 1))
        with pytest.raises(ScheduleError):
            grid.surplus((0, grid.n))

    def test_label_requires_containment(self, small_evolving):
        grid = grid_for(small_evolving)
        with pytest.raises(ScheduleError):
            grid.label((0, 0), (1, 1))
        with pytest.raises(ScheduleError):
            grid.weight((0, 0), (0, 0))

    def test_icg_equals_subrange_decomposition(self, small_evolving):
        """ICG(i, j) literally is the common graph of snapshots i..j."""
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        grid = TriangularGrid(decomp)
        sub = CommonGraphDecomposition.from_snapshots(
            small_evolving.num_vertices,
            [small_evolving.snapshot_edges(t) for t in range(2, 6)],
        )
        assert decomp.interval_edges(2, 5) == sub.common
        assert grid.surplus((2, 5)) == sub.common - decomp.common
