"""Tests for the CommonGraph decomposition."""

import random
import threading

import pytest
from hypothesis import given, settings

from repro.core.common import CommonGraphDecomposition
from repro.errors import SnapshotError
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet
from tests.strategies import evolving_graphs


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


@pytest.fixture
def eg():
    base = es((0, 1), (1, 2), (2, 3), (3, 0))
    batches = [
        DeltaBatch(additions=es((0, 2)), deletions=es((1, 2))),
        DeltaBatch(additions=es((1, 2)), deletions=es((0, 2), (2, 3))),
    ]
    return EvolvingGraph(4, base, batches)


class TestConstruction:
    def test_common_is_intersection(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        want = eg.snapshot_edges(0) & eg.snapshot_edges(1) & eg.snapshot_edges(2)
        assert decomp.common == want
        assert set(decomp.common) == {(0, 1), (3, 0)}

    def test_from_snapshots_equivalent(self, eg):
        a = CommonGraphDecomposition.from_evolving(eg)
        b = CommonGraphDecomposition.from_snapshots(4, eg.all_snapshot_edges())
        assert a.common == b.common
        assert a.surpluses == b.surpluses

    def test_reconstruction(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        for i in range(eg.num_snapshots):
            assert decomp.snapshot_edges(i) == eg.snapshot_edges(i)

    def test_surpluses_disjoint_from_common(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        for s in decomp.surpluses:
            assert s.isdisjoint(decomp.common)

    def test_single_snapshot(self):
        decomp = CommonGraphDecomposition.from_snapshots(3, [es((0, 1))])
        assert decomp.common == es((0, 1))
        assert len(decomp.surpluses[0]) == 0

    def test_empty_snapshots_rejected(self):
        with pytest.raises(SnapshotError):
            CommonGraphDecomposition.from_snapshots(3, [])

    def test_overlapping_surplus_rejected(self):
        with pytest.raises(SnapshotError):
            CommonGraphDecomposition(3, es((0, 1)), [es((0, 1))])


class TestIntervalSurplus:
    def test_full_interval_is_empty(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        assert len(decomp.interval_surplus(0, eg.num_snapshots - 1)) == 0

    def test_point_interval_is_snapshot_surplus(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        for i in range(eg.num_snapshots):
            assert decomp.interval_surplus(i, i) == decomp.surpluses[i]

    def test_interval_matches_direct_intersection(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        want = eg.snapshot_edges(0) & eg.snapshot_edges(1)
        assert decomp.interval_edges(0, 1) == want

    def test_invalid_interval(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        with pytest.raises(SnapshotError):
            decomp.interval_surplus(1, 0)
        with pytest.raises(SnapshotError):
            decomp.interval_surplus(0, 5)

    def test_memoisation_returns_same_object(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        a = decomp.interval_surplus(0, 1)
        assert decomp.interval_surplus(0, 1) is a


class TestCosts:
    def test_direct_hop_batches(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        total = decomp.total_direct_hop_additions()
        assert total == sum(len(s) for s in decomp.surpluses)
        for i in range(eg.num_snapshots):
            assert decomp.direct_hop_batch(i) == decomp.surpluses[i]

    def test_materialisation(self, eg):
        decomp = CommonGraphDecomposition.from_evolving(eg)
        csr = decomp.common_csr()
        assert csr.edge_set() == decomp.common
        delta = decomp.delta_csr(decomp.surpluses[1])
        assert delta.edge_set() == decomp.surpluses[1]


@settings(max_examples=40)
@given(evolving_graphs())
def test_decomposition_invariants_random(eg):
    decomp = CommonGraphDecomposition.from_evolving(eg)
    n = eg.num_snapshots
    # (1) the common graph is inside every snapshot
    for i in range(n):
        assert decomp.common.issubset(eg.snapshot_edges(i))
        # (2) common + surplus reconstructs the snapshot exactly
        assert decomp.snapshot_edges(i) == eg.snapshot_edges(i)
    # (3) interval surpluses are intersections of point surpluses
    for i in range(n):
        for j in range(i, n):
            want = decomp.surpluses[i]
            for t in range(i + 1, j + 1):
                want = want & decomp.surpluses[t]
            assert decomp.interval_surplus(i, j) == want
    # (4) equivalence of both constructors
    other = CommonGraphDecomposition.from_snapshots(
        eg.num_vertices, eg.all_snapshot_edges()
    )
    assert other.common == decomp.common


class TestConcurrentMemoUse:
    """The interval-surplus memo is shared by lock-free readers.

    The query service publishes one decomposition to many evaluator
    threads while an ingest extends/restricts it; lazy memo inserts
    (``interval_surplus``) must never race the memo iterations in
    ``extended``/``restrict`` into a ``RuntimeError: dictionary changed
    size during iteration``.
    """

    def test_concurrent_queries_extension_and_restriction(self):
        rng = random.Random(7)
        num_vertices = 24
        universe = [
            (u, v)
            for u in range(num_vertices)
            for v in range(num_vertices)
            if u != v
        ]

        def snapshot():
            return EdgeSet.from_pairs(rng.sample(universe, 80))

        for _ in range(5):  # fresh cold memo each round
            decomp = CommonGraphDecomposition.from_snapshots(
                num_vertices, [snapshot() for _ in range(10)]
            )
            n = decomp.num_snapshots
            new_edges = snapshot()
            errors = []

            def fill_memo():
                for i in range(n):
                    for j in range(i, n):
                        decomp.interval_surplus(i, j)

            def restrict_loop():
                for first in range(n - 1):
                    decomp.restrict(first, n - 1)

            def extend_loop():
                for _ in range(3):
                    decomp.extended(new_edges)

            jobs = (fill_memo, fill_memo, restrict_loop, extend_loop)
            start = threading.Barrier(len(jobs))

            def run(job):
                try:
                    start.wait()
                    job()
                except Exception as exc:  # pragma: no cover - regression
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(job,)) for job in jobs
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
