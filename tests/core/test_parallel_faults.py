"""Fault-injected tests for the resilient parallel executors.

The acceptance bar: with a fault plan failing 1 of N hops (or edges),
both executors still return vertex values for *all* snapshots,
identical to the fault-free run, with the affected units marked
``retried`` or ``degraded`` in the outcome records.
"""

import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.parallel import ParallelDirectHop, ParallelWorkSharing
from repro.graph.weights import HashWeights
from repro.resilience import RetryPolicy
from repro.testing import FaultPlan, fault_injection
from tests.conftest import assert_values_equal

pytestmark = pytest.mark.faults

WF = HashWeights(max_weight=8, seed=7)
ALWAYS = 10_000  # enough "times" to defeat every retry in every pass


@pytest.fixture(scope="module")
def decomp(small_evolving):
    return CommonGraphDecomposition.from_evolving(small_evolving)


@pytest.fixture(scope="module")
def clean_direct_hop(decomp):
    return ParallelDirectHop(
        decomp, get_algorithm("SSSP"), 3, weight_fn=WF
    ).run(use_pool=False)


@pytest.fixture(scope="module")
def clean_work_sharing(decomp):
    return ParallelWorkSharing(
        decomp, get_algorithm("SSSP"), 3, weight_fn=WF
    ).run(use_pool=False)


def assert_same_values_list(result, clean):
    assert len(result.snapshot_values) == len(clean.snapshot_values)
    for i, (got, want) in enumerate(
        zip(result.snapshot_values, clean.snapshot_values)
    ):
        assert_values_equal(got, want, f"snapshot {i}")


def assert_same_values_dict(result, clean):
    assert sorted(result.snapshot_values) == sorted(clean.snapshot_values)
    for i, want in clean.snapshot_values.items():
        assert_values_equal(result.snapshot_values[i], want, f"snapshot {i}")


class TestParallelDirectHopFaults:
    def test_transient_hop_failure_is_retried(self, decomp, clean_direct_hop):
        plan = FaultPlan().fail_task(match="hop:2", times=1)
        with fault_injection(plan):
            result = ParallelDirectHop(
                decomp, get_algorithm("SSSP"), 3, weight_fn=WF
            ).run(use_pool=False)
        assert plan.fired_rules()
        assert result.outcomes[2].status == "retried"
        assert result.outcomes[2].attempts == 2
        assert [o.status for i, o in enumerate(result.outcomes) if i != 2] == (
            ["ok"] * (len(result.outcomes) - 1)
        )
        assert result.outcome_counts == {
            "ok": len(result.outcomes) - 1, "retried": 1, "degraded": 0,
        }
        assert_same_values_list(result, clean_direct_hop)

    def test_persistent_hop_failure_degrades(self, decomp, clean_direct_hop):
        plan = FaultPlan().fail_task(match="hop:4", times=ALWAYS)
        with fault_injection(plan):
            result = ParallelDirectHop(
                decomp, get_algorithm("SSSP"), 3, weight_fn=WF
            ).run(use_pool=False)
        assert result.outcomes[4].status == "degraded"
        assert result.outcomes[4].error is not None
        assert result.outcome_counts["degraded"] == 1
        assert_same_values_list(result, clean_direct_hop)

    def test_pooled_pass_survives_injected_faults(
        self, decomp, clean_direct_hop
    ):
        # The sequential pass executes each hop once, so the second
        # matching occurrence of hop:1 is its pooled execution.
        plan = FaultPlan().fail_task(match="hop:1", index=1, times=1)
        with fault_injection(plan):
            result = ParallelDirectHop(
                decomp, get_algorithm("SSSP"), 3, weight_fn=WF
            ).run(use_pool=True, max_workers=4)
        assert plan.fired_rules()
        assert result.outcomes[1].status == "retried"
        assert result.pool_wall_seconds > 0
        assert_same_values_list(result, clean_direct_hop)

    def test_custom_retry_policy_attempt_budget(self, decomp):
        plan = FaultPlan().fail_task(match="hop:0", times=3)
        with fault_injection(plan):
            result = ParallelDirectHop(
                decomp, get_algorithm("BFS"), 3, weight_fn=WF
            ).run(
                use_pool=False,
                retry_policy=RetryPolicy(
                    max_attempts=4, base_delay=0.0, max_delay=0.0
                ),
            )
        # 3 injected failures, 4 allowed attempts: the 4th succeeds.
        assert result.outcomes[0].status == "retried"
        assert result.outcomes[0].attempts == 4


class TestParallelWorkSharingFaults:
    def test_single_edge_failure_still_yields_all_values(
        self, decomp, clean_work_sharing
    ):
        plan = FaultPlan().fail_task(match="edge:*", index=0, times=1)
        with fault_injection(plan):
            result = ParallelWorkSharing(
                decomp, get_algorithm("SSSP"), 3, weight_fn=WF
            ).run(use_pool=False)
        assert plan.fired_rules()
        assert result.outcome_counts["retried"] == 1
        assert result.outcome_counts["degraded"] == 0
        assert_same_values_dict(result, clean_work_sharing)

    def test_persistent_edge_failure_degrades(
        self, decomp, clean_work_sharing
    ):
        # times=2 covers both primary attempts of the first edge only.
        plan = FaultPlan().fail_task(match="edge:*", index=0, times=2)
        with fault_injection(plan):
            result = ParallelWorkSharing(
                decomp, get_algorithm("SSSP"), 3, weight_fn=WF
            ).run(use_pool=False)
        assert result.outcome_counts["degraded"] == 1
        assert result.outcome_counts["retried"] == 0
        degraded = [o for o in result.edge_outcomes.values()
                    if o.status == "degraded"]
        assert degraded[0].error is not None
        assert_same_values_dict(result, clean_work_sharing)

    def test_pool_drain_survives_injected_task_failure(
        self, decomp, clean_work_sharing
    ):
        """Regression for the unhandled pool-drain failure: one injected
        task failure mid-drain must not abandon in-flight futures or
        lose snapshot values."""
        num_edges = len(result_edges(decomp))
        # Sequential pass consumes one matching op per edge; the next
        # matching op is the first pooled task to run.
        plan = FaultPlan().fail_task(match="edge:*", index=num_edges, times=1)
        with fault_injection(plan):
            result = ParallelWorkSharing(
                decomp, get_algorithm("SSSP"), 3, weight_fn=WF
            ).run(use_pool=True, max_workers=4)
        assert plan.fired_rules()
        assert result.pool_wall_seconds > 0
        assert result.outcome_counts["retried"] == 1
        assert_same_values_dict(result, clean_work_sharing)

    def test_every_edge_failing_once_still_converges(
        self, decomp, clean_work_sharing
    ):
        """Worst transient weather: every edge's first attempt fails."""
        num_edges = len(result_edges(decomp))
        plan = FaultPlan()
        for k in range(num_edges):
            plan.fail_task(match="edge:*", index=2 * k, times=1)
        with fault_injection(plan):
            result = ParallelWorkSharing(
                decomp, get_algorithm("SSSP"), 3, weight_fn=WF
            ).run(use_pool=False)
        assert result.outcome_counts["ok"] == 0
        assert_same_values_dict(result, clean_work_sharing)


def result_edges(decomp):
    """The schedule edges a default work-sharing run will execute."""
    from repro.core.steiner import build_schedule
    from repro.core.triangular_grid import TriangularGrid

    return list(build_schedule(TriangularGrid(decomp), "work-sharing").edges())
