"""Degenerate and boundary inputs across the evaluation stack."""

import numpy as np

from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.core.steiner import greedy_steiner, direct_hop_tree
from repro.core.triangular_grid import TriangularGrid
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from repro.kickstarter.streaming import StreamingSession

WF = HashWeights(max_weight=8, seed=7)


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


class TestEmptyAndTinyGraphs:
    def test_static_compute_empty_graph(self, algorithm):
        g = CSRGraph.empty(4)
        state = static_compute(g, algorithm, 0)
        assert state.values[0] == algorithm.source_value
        assert np.all(state.values[1:] == algorithm.worst)

    def test_single_vertex_graph(self, algorithm):
        g = CSRGraph.empty(1)
        state = static_compute(g, algorithm, 0)
        assert state.values.tolist() == [algorithm.source_value]

    def test_evolving_graph_with_empty_base(self):
        eg = EvolvingGraph(3, EdgeSet.empty(), [
            DeltaBatch(additions=es((0, 1))),
            DeltaBatch(additions=es((1, 2)), deletions=es((0, 1))),
        ])
        decomp = CommonGraphDecomposition.from_evolving(eg)
        assert len(decomp.common) == 0
        result = DirectHopEvaluator(decomp, get_algorithm("BFS"), 0, weight_fn=WF).run()
        assert result.snapshot_values[1][1] == 1.0
        assert np.isinf(result.snapshot_values[2][1])

    def test_empty_batches_everywhere(self, algorithm):
        base = es((0, 1), (1, 2))
        eg = EvolvingGraph(3, base, [DeltaBatch(), DeltaBatch()])
        decomp = CommonGraphDecomposition.from_evolving(eg)
        assert decomp.common == base
        assert decomp.total_direct_hop_additions() == 0
        ks = StreamingSession(eg, algorithm, 0, weight_fn=WF).run()
        ws = WorkSharingEvaluator(decomp, algorithm, 0, weight_fn=WF).run()
        for i in range(3):
            assert np.array_equal(ks.snapshot_values[i], ws.snapshot_values[i])

    def test_everything_deleted(self):
        """The common graph can be empty and snapshots disjoint."""
        eg = EvolvingGraph(4, es((0, 1), (0, 2)), [
            DeltaBatch(additions=es((0, 3)), deletions=es((0, 1), (0, 2))),
        ])
        decomp = CommonGraphDecomposition.from_evolving(eg)
        assert len(decomp.common) == 0
        result = DirectHopEvaluator(decomp, get_algorithm("BFS"), 0, weight_fn=WF).run()
        assert result.snapshot_values[0][1] == 1.0
        assert np.isinf(result.snapshot_values[1][1])
        assert result.snapshot_values[1][3] == 1.0


class TestSourceCornerCases:
    def test_isolated_source(self, algorithm):
        eg = EvolvingGraph(4, es((1, 2), (2, 3)), [DeltaBatch(additions=es((3, 1)))])
        decomp = CommonGraphDecomposition.from_evolving(eg)
        result = DirectHopEvaluator(decomp, algorithm, 0, weight_fn=WF).run()
        for values in result.snapshot_values:
            assert values[0] == algorithm.source_value
            assert np.all(values[1:] == algorithm.worst)

    def test_source_becomes_connected_by_addition(self):
        eg = EvolvingGraph(3, es((1, 2)), [DeltaBatch(additions=es((0, 1)))])
        decomp = CommonGraphDecomposition.from_evolving(eg)
        result = DirectHopEvaluator(decomp, get_algorithm("BFS"), 0, weight_fn=WF).run()
        assert np.isinf(result.snapshot_values[0][1])
        assert result.snapshot_values[1][1] == 1.0
        assert result.snapshot_values[1][2] == 2.0


class TestTwoSnapshotGrid:
    """The smallest non-trivial Triangular Grid (n=2, one level)."""

    def test_structure(self):
        eg = EvolvingGraph(4, es((0, 1), (1, 2)), [
            DeltaBatch(additions=es((2, 3)), deletions=es((1, 2))),
        ])
        grid = TriangularGrid(CommonGraphDecomposition.from_evolving(eg))
        assert grid.n == 2
        assert grid.root == (0, 1)
        assert grid.children(grid.root) == [(0, 0), (1, 1)]
        # With n=2 there are no interior ICGs; greedy == direct-hop.
        greedy = greedy_steiner(grid)
        star = direct_hop_tree(grid)
        assert greedy.cost(grid) == star.cost(grid)

    def test_single_snapshot_everything(self, algorithm):
        eg = EvolvingGraph(3, es((0, 1), (1, 2)))
        decomp = CommonGraphDecomposition.from_evolving(eg)
        grid = TriangularGrid(decomp)
        assert grid.root == (0, 0)
        assert grid.children(grid.root) == []
        dh = DirectHopEvaluator(decomp, algorithm, 0, weight_fn=WF).run()
        ws = WorkSharingEvaluator(decomp, algorithm, 0, weight_fn=WF).run()
        want = static_compute(
            CSRGraph.from_edge_set(es((0, 1), (1, 2)), 3, weight_fn=WF),
            algorithm, 0,
        ).values
        assert np.array_equal(dh.snapshot_values[0], want)
        assert np.array_equal(ws.snapshot_values[0], want)


class TestCoarsenedEvaluation:
    def test_coarsened_matches_kept_snapshots(self, small_evolving, algorithm):
        """Evaluating a coarsened stream gives exactly the kept
        snapshots' results of the original stream."""
        coarse = small_evolving.coarsened(3)
        decomp = CommonGraphDecomposition.from_evolving(coarse)
        result = DirectHopEvaluator(decomp, algorithm, 3, weight_fn=WF).run()
        kept = [
            min(k * 3, small_evolving.num_snapshots - 1)
            for k in range(coarse.num_snapshots)
        ]
        for k, original_index in enumerate(kept):
            want = static_compute(
                small_evolving.snapshot_csr(original_index, weight_fn=WF),
                algorithm, 3,
            ).values
            assert np.array_equal(result.snapshot_values[k], want)
