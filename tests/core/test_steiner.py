"""Tests for schedule construction (direct-hop, greedy, exact Steiner)."""

import pytest
from hypothesis import given, settings

from repro.core.common import CommonGraphDecomposition
from repro.core.steiner import (
    agglomerative_schedule,
    build_schedule,
    direct_hop_tree,
    exact_steiner,
    greedy_steiner,
)
from repro.core.triangular_grid import TriangularGrid
from repro.errors import ScheduleError
from tests.strategies import evolving_graphs


def grid_for(eg):
    return TriangularGrid(CommonGraphDecomposition.from_evolving(eg))


class TestDirectHop:
    def test_star_shape(self, small_evolving):
        grid = grid_for(small_evolving)
        tree = direct_hop_tree(grid)
        assert set(tree.parent.values()) <= {grid.root}
        assert sorted(tree.parent) == grid.leaves
        tree.validate(grid)


class TestGreedy:
    def test_valid_and_no_worse_than_direct_hop(self, small_evolving):
        grid = grid_for(small_evolving)
        tree = greedy_steiner(grid)
        tree.validate(grid)
        assert tree.cost(grid) <= direct_hop_tree(grid).cost(grid)

    def test_build_schedule_dispatch(self, small_evolving):
        grid = grid_for(small_evolving)
        assert build_schedule(grid, "direct-hop").parent == direct_hop_tree(grid).parent
        assert build_schedule(grid, "work-sharing").cost(grid) == greedy_steiner(grid).cost(grid)
        with pytest.raises(ScheduleError, match="unknown strategy"):
            build_schedule(grid, "magic")

    def test_single_snapshot(self):
        from repro.evolving.snapshots import EvolvingGraph
        from repro.graph.edgeset import EdgeSet

        eg = EvolvingGraph(3, EdgeSet.from_pairs([(0, 1)]))
        grid = grid_for(eg)
        tree = greedy_steiner(grid)
        tree.validate(grid)
        assert tree.cost(grid) == 0
        assert tree.num_stabilisations() == 0


class TestAgglomerative:
    def test_valid_and_no_worse_than_direct_hop(self, small_evolving):
        grid = grid_for(small_evolving)
        tree = agglomerative_schedule(grid)
        tree.validate(grid)
        assert tree.cost(grid) <= direct_hop_tree(grid).cost(grid)

    def test_build_schedule_dispatch(self, small_evolving):
        grid = grid_for(small_evolving)
        assert build_schedule(grid, "agglomerative").cost(grid) == (
            agglomerative_schedule(grid).cost(grid)
        )

    @settings(max_examples=25, deadline=None)
    @given(evolving_graphs(max_batches=4))
    def test_bounded_by_exact_and_star(self, eg):
        grid = grid_for(eg)
        agglo = agglomerative_schedule(grid)
        agglo.validate(grid)
        assert exact_steiner(grid).cost(grid) <= agglo.cost(grid)
        assert agglo.cost(grid) <= direct_hop_tree(grid).cost(grid)


class TestExact:
    def test_refuses_large_grids(self, small_evolving):
        grid = grid_for(small_evolving)
        assert grid.n > 6
        with pytest.raises(ScheduleError, match="exponential"):
            exact_steiner(grid)

    @settings(max_examples=25, deadline=None)
    @given(evolving_graphs(max_batches=4))
    def test_exact_is_lower_bound(self, eg):
        grid = grid_for(eg)
        exact = exact_steiner(grid)
        exact.validate(grid)
        greedy = greedy_steiner(grid)
        star = direct_hop_tree(grid)
        assert exact.cost(grid) <= greedy.cost(grid)
        assert exact.cost(grid) <= star.cost(grid)


@settings(max_examples=25, deadline=None)
@given(evolving_graphs(max_batches=4))
def test_greedy_properties_random(eg):
    grid = grid_for(eg)
    tree = greedy_steiner(grid)
    tree.validate(grid)
    assert tree.cost(grid) <= direct_hop_tree(grid).cost(grid)
    # Every leaf is reachable from the root through parent pointers.
    for leaf in grid.leaves:
        node = leaf
        hops = 0
        while node != grid.root:
            node = tree.parent[node]
            hops += 1
            assert hops <= grid.num_nodes()
