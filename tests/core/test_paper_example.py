"""The paper's worked example (§3.1–§3.2, Figures 4–6), literally.

Three snapshots with the paper's exact update batches:

* Δi+  = {e3, e12, e15}
* Δi−  = {e9, e11, e16, e23, e29}
* Δi+1+ = {e9, e11, e14, e24, e29}
* Δi+1− = {e3, e4, e7, e10, e26}

Expected results stated in the paper:

* Direct-Hop processes |Δc1| + |Δc2| + |Δc3| additions.  The paper's
  prose says "22", but the three batches it lists (and that follow from
  its update batches) have sizes 9 + 7 + 7 = 23 — a known arithmetic
  slip in the paper; we assert the set-derived 23 and check the exact
  batch contents against Figure 4;
* the TG batches around the intermediate level are
  ICG1→Gi = Δi− (5), ICG1→Gi+1 = Δi+ (3), ICG2→Gi+1 = Δi+1− (5),
  ICG2→Gi+2 = Δi+1+ (5), Gc→ICG1 = Δi+1− − Δi+ = {e4,e7,e10,e26} (4),
  Gc→ICG2 = Δi+ − Δi+1− = {e12,e15} (2);
* Tree1 (through ICG1, bypassing ICG2) costs 19 additions;
* Tree2 (through ICG2, bypassing ICG1) costs 21 additions;
* the optimal schedule is Tree1 at 19.
"""

import pytest

from repro.core.common import CommonGraphDecomposition
from repro.core.schedule import ScheduleTree
from repro.core.steiner import direct_hop_tree, exact_steiner, greedy_steiner
from repro.core.triangular_grid import TriangularGrid
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet


def e(*labels):
    """Edge e_k is represented as the concrete edge (k, k+1)."""
    return EdgeSet.from_pairs([(k, k + 1) for k in labels])


D_I_ADD = e(3, 12, 15)
D_I_DEL = e(9, 11, 16, 23, 29)
D_I1_ADD = e(9, 11, 14, 24, 29)
D_I1_DEL = e(3, 4, 7, 10, 26)

#: Filler edges present in every snapshot (the common graph core).
COMMON_FILLER = e(40, 41, 42)


@pytest.fixture
def example():
    # G_i must contain everything ever deleted that wasn't first added.
    g_i = D_I_DEL | (D_I1_DEL - D_I_ADD) | COMMON_FILLER
    eg = EvolvingGraph(
        48,
        g_i,
        [
            DeltaBatch(additions=D_I_ADD, deletions=D_I_DEL),
            DeltaBatch(additions=D_I1_ADD, deletions=D_I1_DEL),
        ],
    )
    decomp = CommonGraphDecomposition.from_evolving(eg)
    return eg, decomp, TriangularGrid(decomp)


class TestCommonGraph:
    def test_common_graph_is_filler(self, example):
        _, decomp, _ = example
        assert decomp.common == COMMON_FILLER

    def test_direct_hop_batches(self, example):
        """Δc1 = 9, Δc2 = 7, Δc3 = 7 additions (Figure 4's sets).

        The paper's prose totals them as 22; the sets sum to 23.
        """
        _, decomp, _ = example
        sizes = [len(s) for s in decomp.surpluses]
        assert sizes == [9, 7, 7]
        assert decomp.total_direct_hop_additions() == 23
        # And the exact batch contents from Figure 4:
        assert decomp.surpluses[0] == e(4, 7, 9, 10, 11, 16, 23, 26, 29)
        assert decomp.surpluses[1] == e(3, 4, 7, 10, 12, 15, 26)
        assert decomp.surpluses[2] == e(9, 11, 12, 14, 15, 24, 29)


class TestTriangularGridLabels:
    """The six labelled batches of §3.2 (circled 1-6 in the paper)."""

    def test_icg1_to_gi(self, example):
        _, _, grid = example
        assert grid.label((0, 1), (0, 0)) == D_I_DEL  # (1)

    def test_icg1_to_gi1(self, example):
        _, _, grid = example
        assert grid.label((0, 1), (1, 1)) == D_I_ADD  # (2)

    def test_icg2_to_gi1(self, example):
        _, _, grid = example
        assert grid.label((1, 2), (1, 1)) == D_I1_DEL  # (3)

    def test_icg2_to_gi2(self, example):
        _, _, grid = example
        assert grid.label((1, 2), (2, 2)) == D_I1_ADD  # (4)

    def test_gc_to_icg1(self, example):
        _, _, grid = example
        assert grid.label((0, 2), (0, 1)) == D_I1_DEL - D_I_ADD  # (5)
        assert grid.label((0, 2), (0, 1)) == e(4, 7, 10, 26)

    def test_gc_to_icg2(self, example):
        _, _, grid = example
        assert grid.label((0, 2), (1, 2)) == D_I_ADD - D_I1_DEL  # (6)
        assert grid.label((0, 2), (1, 2)) == e(12, 15)


class TestSchedules:
    def tree1(self, grid):
        tree = ScheduleTree(root=(0, 2))
        tree.parent[(0, 1)] = (0, 2)
        tree.parent[(0, 0)] = (0, 1)
        tree.parent[(1, 1)] = (0, 1)
        tree.parent[(2, 2)] = (0, 2)  # ICG2 bypassed
        return tree

    def tree2(self, grid):
        tree = ScheduleTree(root=(0, 2))
        tree.parent[(1, 2)] = (0, 2)
        tree.parent[(1, 1)] = (1, 2)
        tree.parent[(2, 2)] = (1, 2)
        tree.parent[(0, 0)] = (0, 2)  # ICG1 bypassed
        return tree

    def test_tree1_costs_19(self, example):
        _, _, grid = example
        assert self.tree1(grid).cost(grid) == 19

    def test_tree2_costs_21(self, example):
        _, _, grid = example
        assert self.tree2(grid).cost(grid) == 21

    def test_direct_hop_cost(self, example):
        """23 = 9 + 7 + 7 (the paper's prose says 22; see module docstring)."""
        _, _, grid = example
        assert direct_hop_tree(grid).cost(grid) == 23

    def test_exact_finds_tree1(self, example):
        _, _, grid = example
        tree = exact_steiner(grid)
        assert tree.cost(grid) == 19
        assert tree.parent == self.tree1(grid).parent

    def test_greedy_finds_tree1(self, example):
        _, _, grid = example
        tree = greedy_steiner(grid)
        assert tree.cost(grid) == 19
        assert tree.parent == self.tree1(grid).parent

    def test_agglomerative_finds_tree1_cost(self, example):
        from repro.core.steiner import agglomerative_schedule

        _, _, grid = example
        tree = agglomerative_schedule(grid)
        assert tree.cost(grid) == 19


class TestExampleEvaluation:
    """The worked example, actually *evaluated*: all strategies agree."""

    @pytest.mark.parametrize("name", ["BFS", "SSSP", "SSWP"])
    def test_strategies_agree_on_example(self, example, name):
        import numpy as np

        from repro.algorithms.registry import get_algorithm
        from repro.core.direct_hop import DirectHopEvaluator
        from repro.core.engine import WorkSharingEvaluator
        from repro.graph.weights import HashWeights
        from repro.kickstarter.engine import static_compute
        from repro.kickstarter.streaming import StreamingSession

        eg, decomp, _ = example
        wf = HashWeights(max_weight=8, seed=7)
        alg = get_algorithm(name)
        source = 40  # inside the common filler chain
        ks = StreamingSession(eg, alg, source, weight_fn=wf).run()
        dh = DirectHopEvaluator(decomp, alg, source, weight_fn=wf).run()
        ws = WorkSharingEvaluator(decomp, alg, source, weight_fn=wf).run()
        for i in range(3):
            want = static_compute(
                eg.snapshot_csr(i, weight_fn=wf), alg, source
            ).values
            assert np.array_equal(ks.snapshot_values[i], want)
            assert np.array_equal(dh.snapshot_values[i], want)
            assert np.array_equal(ws.snapshot_values[i], want)
