"""Tests for the parallel Direct-Hop and Work-Sharing evaluators."""

from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.parallel import ParallelDirectHop, ParallelWorkSharing
from repro.core.steiner import direct_hop_tree
from repro.core.triangular_grid import TriangularGrid
from repro.kickstarter.engine import static_compute
from repro.graph.weights import HashWeights
from tests.conftest import assert_values_equal

WF = HashWeights(max_weight=8, seed=7)


class TestParallelDirectHop:
    def test_values_match_scratch(self, small_evolving, algorithm):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = ParallelDirectHop(decomp, algorithm, 3, weight_fn=WF).run(
            use_pool=False
        )
        for i in range(small_evolving.num_snapshots):
            g = small_evolving.snapshot_csr(i, weight_fn=WF)
            want = static_compute(g, algorithm, 3).values
            assert_values_equal(result.snapshot_values[i], want, algorithm.name)

    def test_timing_projections(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = ParallelDirectHop(
            decomp, get_algorithm("SSSP"), 3, weight_fn=WF
        ).run(use_pool=False)
        n = small_evolving.num_snapshots
        assert len(result.per_hop_seconds) == n
        assert result.critical_path_seconds == max(result.per_hop_seconds)
        assert result.sequential_seconds >= result.critical_path_seconds
        assert result.initial_seconds > 0
        assert result.pool_wall_seconds == 0.0

    def test_pool_execution_runs(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = ParallelDirectHop(
            decomp, get_algorithm("BFS"), 3, weight_fn=WF
        ).run(use_pool=True, max_workers=4)
        assert result.pool_wall_seconds > 0

    def test_empty_hop_list_critical_path(self):
        from repro.core.parallel import ParallelResult

        assert ParallelResult().critical_path_seconds == 0.0


class TestParallelWorkSharing:
    def test_values_match_scratch(self, small_evolving, algorithm):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = ParallelWorkSharing(decomp, algorithm, 3, weight_fn=WF).run(
            use_pool=False
        )
        assert sorted(result.snapshot_values) == list(
            range(small_evolving.num_snapshots)
        )
        for i in range(small_evolving.num_snapshots):
            g = small_evolving.snapshot_csr(i, weight_fn=WF)
            want = static_compute(g, algorithm, 3).values
            assert_values_equal(result.snapshot_values[i], want, algorithm.name)

    def test_pool_execution_matches(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        alg = get_algorithm("SSSP")
        result = ParallelWorkSharing(decomp, alg, 3, weight_fn=WF).run(
            use_pool=True, max_workers=4
        )
        assert result.pool_wall_seconds > 0
        for i in range(small_evolving.num_snapshots):
            g = small_evolving.snapshot_csr(i, weight_fn=WF)
            want = static_compute(g, alg, 3).values
            assert_values_equal(result.snapshot_values[i], want, f"pooled@{i}")

    def test_critical_path_bounds(self, small_evolving):
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        result = ParallelWorkSharing(
            decomp, get_algorithm("BFS"), 3, weight_fn=WF
        ).run(use_pool=False)
        assert result.edge_seconds  # every schedule edge was timed
        longest_edge = max(result.edge_seconds.values())
        assert result.critical_path_seconds >= result.initial_seconds + longest_edge
        assert (
            result.critical_path_seconds
            <= result.initial_seconds + result.sequential_seconds
        )

    def test_star_schedule_equals_direct_hop_projection(self, small_evolving):
        """With the star schedule, the per-edge times are per-hop times."""
        decomp = CommonGraphDecomposition.from_evolving(small_evolving)
        grid = TriangularGrid(decomp)
        result = ParallelWorkSharing(
            decomp, get_algorithm("BFS"), 3, weight_fn=WF,
            schedule=direct_hop_tree(grid),
        ).run(use_pool=False)
        assert len(result.edge_seconds) == small_evolving.num_snapshots
