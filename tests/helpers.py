"""Shared test helpers.

The reference implementations now live in the *public*
:mod:`repro.testing` module (so downstream users can test custom
algorithms against the same oracle); this module re-exports them for
the test suite.
"""

from repro.testing import (  # noqa: F401
    assert_monotonic,
    assert_values_equal,
    reference_compute,
    reference_compute_edgeset,
)
