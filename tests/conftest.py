"""Shared fixtures for the test suite."""

from __future__ import annotations

import json
import os
import re

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.evolving.generator import generate_evolving_graph
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.generators import rmat_edges
from repro.graph.weights import HashWeights

ALL_ALGORITHMS = ("BFS", "SSSP", "SSWP", "SSNP", "Viterbi")

# Storm tests are the hardest to debug from a red X alone.  When
# REPRO_ARTIFACT_DIR is set (CI exports it), a failing chaos/fleet test
# leaves behind its Prometheus metrics dump and the tracer's recent-span
# ring buffer so the post-mortem starts from data, not guesses.
_ARTIFACT_MARKERS = ("chaos", "fleet", "livetip", "autopilot")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    artifact_dir = os.environ.get("REPRO_ARTIFACT_DIR")
    if (not artifact_dir
            or report.when != "call"
            or not report.failed
            or not any(item.get_closest_marker(m) for m in _ARTIFACT_MARKERS)):
        return
    from repro import obs

    runtime = obs.current()
    if runtime is None:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", item.nodeid)
    try:
        with open(os.path.join(artifact_dir, f"{stem}.prom"), "w") as fh:
            fh.write(runtime.registry.render_prometheus())
        with open(os.path.join(artifact_dir,
                               f"{stem}.trace.jsonl"), "w") as fh:
            for span in runtime.tracer.recent():
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        if item.get_closest_marker("autopilot"):
            from repro.autopilot import decision_log

            decisions = decision_log()
            if decisions:
                with open(os.path.join(artifact_dir,
                                       f"{stem}.decisions.json"), "w") as fh:
                    json.dump(decisions, fh, indent=2, sort_keys=True)
    except OSError:
        pass  # artifact capture must never mask the real failure


@pytest.fixture(params=ALL_ALGORITHMS)
def algorithm(request):
    """Each of the five paper algorithms in turn."""
    return get_algorithm(request.param)


@pytest.fixture
def weight_fn():
    """Small deterministic weights so ties and caps are exercised."""
    return HashWeights(max_weight=8, seed=7)


@pytest.fixture
def diamond_edges():
    """A 6-vertex diamond-with-tail used by many engine tests.

    0 -> 1 -> 3 -> 4 -> 5
    0 -> 2 -> 3
    """
    return EdgeSet.from_pairs([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)])


@pytest.fixture
def diamond_csr(diamond_edges, weight_fn):
    return CSRGraph.from_edge_set(diamond_edges, 6, weight_fn=weight_fn)


@pytest.fixture(scope="session")
def small_rmat():
    """A small RMAT edge set shared across integration tests."""
    return rmat_edges(scale=8, num_edges=1500, seed=5)


@pytest.fixture(scope="session")
def small_evolving(small_rmat):
    """An 8-snapshot evolving RMAT graph (batch 60, re-adds enabled)."""
    return generate_evolving_graph(
        num_vertices=1 << 8,
        base=small_rmat,
        num_snapshots=8,
        batch_size=60,
        readd_fraction=0.6,
        seed=9,
        name="small",
    )


def assert_values_equal(a: np.ndarray, b: np.ndarray, context: str = "") -> None:
    __tracebackhide__ = True
    if not np.array_equal(a, b):
        diff = np.flatnonzero(a != b)
        raise AssertionError(
            f"{context}: values differ at {diff[:10]} "
            f"(a={a[diff[:10]]}, b={b[diff[:10]]})"
        )
