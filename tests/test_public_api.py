"""Public API surface checks."""

import inspect

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_public_items_documented():
    """Every public class and function in __all__ carries a docstring."""
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert undocumented == []


def test_quickstart_docstring_runs():
    """The package docstring's quickstart is executable as written."""
    import repro as r

    base = r.rmat_edges(scale=8, num_edges=1200, seed=1)
    evolving = r.generate_evolving_graph(
        num_vertices=1 << 8, base=base, num_snapshots=4, batch_size=40,
    )
    decomp = r.CommonGraphDecomposition.from_evolving(evolving)
    result = r.DirectHopEvaluator(
        decomp, r.SSSP(), source=0, weight_fn=r.default_weights()
    ).run()
    assert len(result.snapshot_values) == 4


def test_subpackages_have_docstrings():
    import repro.algorithms
    import repro.bench
    import repro.core
    import repro.evolving
    import repro.graph
    import repro.kickstarter

    for module in (
        repro, repro.graph, repro.evolving, repro.algorithms,
        repro.kickstarter, repro.core, repro.bench,
    ):
        assert (module.__doc__ or "").strip(), module.__name__
