"""Hypothesis strategies for graphs, edge sets and evolving graphs."""

from __future__ import annotations

from typing import List, Set, Tuple

from hypothesis import strategies as st

from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet

DEFAULT_MAX_VERTICES = 12


@st.composite
def edge_pairs(draw, max_vertices: int = DEFAULT_MAX_VERTICES, max_edges: int = 40):
    """A list of distinct (u, v) pairs with u != v."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    count = draw(st.integers(min_value=0, max_value=min(max_edges, len(possible))))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(possible) - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    return n, [possible[i] for i in indices]


@st.composite
def edge_sets(draw, max_vertices: int = DEFAULT_MAX_VERTICES, max_edges: int = 40):
    """An (num_vertices, EdgeSet) pair."""
    n, pairs = draw(edge_pairs(max_vertices=max_vertices, max_edges=max_edges))
    return n, EdgeSet.from_pairs(pairs)


@st.composite
def evolving_graphs(
    draw,
    max_vertices: int = DEFAULT_MAX_VERTICES,
    max_edges: int = 30,
    max_batches: int = 4,
    max_updates_per_batch: int = 6,
):
    """A small random evolving graph with a well-formed update stream.

    Batches may re-add previously deleted edges, exercising the
    structure the Triangular Grid shares.
    """
    n, pairs = draw(edge_pairs(max_vertices=max_vertices, max_edges=max_edges))
    current: Set[Tuple[int, int]] = set(pairs)
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    num_batches = draw(st.integers(min_value=0, max_value=max_batches))
    batches: List[DeltaBatch] = []
    for _ in range(num_batches):
        absent = sorted(set(possible) - current)
        present = sorted(current)
        n_add = draw(st.integers(0, min(max_updates_per_batch, len(absent))))
        n_del = draw(st.integers(0, min(max_updates_per_batch, len(present))))
        add_idx = draw(
            st.lists(st.integers(0, len(absent) - 1), min_size=n_add,
                     max_size=n_add, unique=True)
        ) if n_add else []
        del_idx = draw(
            st.lists(st.integers(0, len(present) - 1), min_size=n_del,
                     max_size=n_del, unique=True)
        ) if n_del else []
        additions = [absent[i] for i in add_idx]
        deletions = [present[i] for i in del_idx]
        batch = DeltaBatch(
            additions=EdgeSet.from_pairs(additions),
            deletions=EdgeSet.from_pairs(deletions),
        )
        batches.append(batch)
        current = (current | set(additions)) - set(deletions)
    base = EdgeSet.from_pairs(pairs)
    return EvolvingGraph(n, base, batches)


def sources_for(num_vertices: int):
    """Strategy for a valid source vertex id."""
    return st.integers(min_value=0, max_value=num_vertices - 1)
