"""The interprocedural lock-order / await-under-lock detector."""

from repro.lint.rules.lockorder import LockOrderRule

from tests.lint.conftest import rule_findings


def lock_rules():
    return [LockOrderRule()]


# -------------------------------------------------------------- fixtures

def two_state_fixture(reverse_body):
    """Two classes, each with its own lock, calling across each other."""
    return {
        "repro/service/state.py": """
            import threading


            class StateA:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.peer = StateB()

                def use(self):
                    with self._lock:
                        return self.peer.push()


            class StateB:
                def __init__(self):
                    self._guard = threading.Lock()

                def push(self):
                    with self._guard:
                        return 1

                def reverse(self, a: "StateA"):
                    with self._guard:
        """ + "\n" + "            " + reverse_body + "\n",
    }


# ------------------------------------------------------------- cycles

def test_two_lock_cycle_across_classes_is_caught(lint_project):
    result = lint_project(
        two_state_fixture("            return a.use()"),
        rules=lock_rules(),
    )
    findings = rule_findings(result, "lock-order")
    assert len(findings) == 1
    assert "cycle" in findings[0].message
    assert "StateA._lock" in findings[0].message
    assert "StateB._guard" in findings[0].message


def test_consistent_order_is_clean(lint_project):
    # Same two locks, but reverse() never re-enters StateA: the edge
    # set stays acyclic (A -> B only).
    result = lint_project(
        two_state_fixture("            return 2"),
        rules=lock_rules(),
    )
    assert rule_findings(result, "lock-order") == []


def test_direct_nested_with_cycle_is_caught(lint_project):
    result = lint_project({
        "repro/fleet/router.py": """
            import threading

            A = threading.Lock()
            B = threading.Lock()


            def forward():
                with A:
                    with B:
                        pass


            def backward():
                with B:
                    with A:
                        pass
        """,
    }, rules=lock_rules())
    findings = rule_findings(result, "lock-order")
    assert len(findings) == 1
    assert "cycle" in findings[0].message


def test_reentrant_self_loop_is_not_a_cycle(lint_project):
    # Re-acquiring the same lock is lock-discipline's concern, not an
    # ordering violation: a self-loop must not be reported as a cycle.
    result = lint_project({
        "repro/service/state.py": """
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        return self.inner()

                def inner(self):
                    with self._lock:
                        return 1
        """,
    }, rules=lock_rules())
    assert rule_findings(result, "lock-order") == []


def test_acquire_release_participates_in_edges(lint_project):
    result = lint_project({
        "repro/service/state.py": """
            import threading


            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    # A bare .acquire() under a held lock is an ordering
                    # edge just like a nested with-statement.
                    with self._b:
                        self._a.acquire()
                        self._a.release()
        """,
    }, rules=lock_rules())
    findings = rule_findings(result, "lock-order")
    assert len(findings) == 1
    assert "Pair._a" in findings[0].message
    assert "Pair._b" in findings[0].message


def test_holds_lock_pragma_seeds_the_held_set(lint_project):
    # flush() is documented (and checked by lock-discipline) to run
    # under _a; acquiring _b inside it closes the loop against sync().
    result = lint_project({
        "repro/service/state.py": """
            import threading


            class Store:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def flush(self):
                    # holds-lock: _a
                    with self._b:
                        return 1

                def sync(self):
                    with self._b:
                        with self._a:
                            return 2
        """,
    }, rules=lock_rules())
    findings = rule_findings(result, "lock-order")
    assert len(findings) == 1
    assert "cycle" in findings[0].message


# ------------------------------------------------------ await under lock

AWAIT_UNDER_LOCK = """
    import threading


    class Plane:
        def __init__(self):
            self._lock = threading.Lock()

        async def relay(self, peer):
            with self._lock:
                return await peer.send()
"""


def test_await_under_thread_lock_in_service_plane_is_caught(lint_project):
    result = lint_project(
        {"repro/service/server.py": AWAIT_UNDER_LOCK}, rules=lock_rules()
    )
    findings = rule_findings(result, "lock-order")
    assert len(findings) == 1
    assert "await" in findings[0].message
    assert "Plane._lock" in findings[0].message
    assert "asyncio.Lock" in findings[0].message


def test_await_under_thread_lock_in_fleet_plane_is_caught(lint_project):
    result = lint_project(
        {"repro/fleet/router.py": AWAIT_UNDER_LOCK}, rules=lock_rules()
    )
    assert len(rule_findings(result, "lock-order")) == 1


def test_await_under_thread_lock_in_autopilot_plane_is_caught(lint_project):
    result = lint_project(
        {"repro/autopilot/loop2.py": AWAIT_UNDER_LOCK}, rules=lock_rules()
    )
    assert len(rule_findings(result, "lock-order")) == 1


def test_await_under_lock_outside_async_planes_is_exempt(lint_project):
    # Core algorithm code is synchronous by charter; the async-plane
    # check must not leak into it.
    result = lint_project(
        {"repro/core/pipeline.py": AWAIT_UNDER_LOCK}, rules=lock_rules()
    )
    assert rule_findings(result, "lock-order") == []


def test_await_under_asyncio_lock_is_fine(lint_project):
    result = lint_project({
        "repro/service/server.py": """
            import asyncio


            class Plane:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def relay(self, peer):
                    async with self._lock:
                        return await peer.send()
        """,
    }, rules=lock_rules())
    assert rule_findings(result, "lock-order") == []


def test_await_after_lock_released_is_fine(lint_project):
    result = lint_project({
        "repro/service/server.py": """
            import threading


            class Plane:
                def __init__(self):
                    self._lock = threading.Lock()

                async def relay(self, peer):
                    with self._lock:
                        payload = 1
                    return await peer.send(payload)
        """,
    }, rules=lock_rules())
    assert rule_findings(result, "lock-order") == []
