"""The ``repro lint`` command end to end, plus the self-lint gate.

The self-lint test is the repository's own acceptance criterion: the
analyzer must exit 0 on the codebase it ships with, with every
grandfathered finding justified in ``lint-baseline.json``.
"""

import json
import textwrap
from pathlib import Path

from repro import lint
from repro.cli import main

CLEAN = "def identity(x):\n    return x\n"

VIOLATION = textwrap.dedent("""\
    import time


    def wall():
        return time.time()
""")


def project(tmp_path, files):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'fixture'\n")
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


def lint_cmd(root, *extra):
    return main(["lint", "--root", str(root), *extra])


# ----------------------------------------------------------- exit codes

def test_clean_project_exits_zero(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": CLEAN})
    assert lint_cmd(root) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_seeded_violation_fails_the_run(tmp_path, capsys):
    # The CI gate: introducing a violation must flip the exit code.
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    assert lint_cmd(root) == 1
    out = capsys.readouterr().out
    assert "determinism" in out and "time.time" in out


def test_config_error_exits_two(tmp_path, capsys):
    root = project(tmp_path, {
        "repro/core/ops.py": "x = 1  # lint: allow(determinism)\n",
    })
    assert lint_cmd(root) == 2
    assert "justification" in capsys.readouterr().err


def test_json_output_parses(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    assert lint_cmd(root, "--json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["counts"] == {"determinism": 1}


def test_list_rules(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": CLEAN})
    assert lint_cmd(root, "--list-rules") == 0
    out = capsys.readouterr().out
    for name in lint.rule_names():
        assert name in out


# ----------------------------------------------- baseline workflow (CLI)

def test_update_baseline_workflow(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    baseline = root / "lint-baseline.json"

    # 1. Grandfather the finding: written with a FIXME placeholder...
    assert lint_cmd(root, "--update-baseline") == 0
    assert baseline.is_file()
    assert "need a justification" in capsys.readouterr().err

    # 2. ...which the next run refuses to load (exit 2, not a pass).
    assert lint_cmd(root) == 2
    capsys.readouterr()

    # 3. Justify it; the finding is suppressed and the run passes.
    payload = json.loads(baseline.read_text())
    payload["entries"][0]["justification"] = "benign: display-only stamp"
    baseline.write_text(json.dumps(payload))
    assert lint_cmd(root) == 0
    assert "1 baselined" in capsys.readouterr().out

    # 4. Fix the code; the entry goes stale but the run still passes,
    #    and --update-baseline prunes it.
    (root / "repro/core/ops.py").write_text(CLEAN)
    assert lint_cmd(root) == 0
    assert "stale baseline entry" in capsys.readouterr().out
    assert lint_cmd(root, "--update-baseline") == 0
    assert json.loads(baseline.read_text())["entries"] == []


def test_no_baseline_flag_bypasses_the_ledger(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    baseline = root / "lint-baseline.json"
    # Build a justified baseline covering the finding.
    result = lint.LintEngine(root).run([root / "repro"])
    lint.write_baseline(baseline, result.findings)
    payload = json.loads(baseline.read_text())
    payload["entries"][0]["justification"] = "benign"
    baseline.write_text(json.dumps(payload))

    assert lint_cmd(root) == 0
    capsys.readouterr()
    assert lint_cmd(root, "--no-baseline") == 1


# -------------------------------------------------------------- self-lint

def repo_root():
    return Path(__file__).resolve().parents[2]


def test_self_lint_repository_is_clean(capsys):
    # `python -m repro lint` on the shipped tree: exit 0, with every
    # suppression accounted for in the justified baseline.
    assert main(["lint"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_shipped_baseline_is_justified_and_not_stale():
    baseline_path = repo_root() / "lint-baseline.json"
    entries = lint.load_baseline(baseline_path)  # raises on FIXME/empty
    result = lint.run_lint()
    active, baselined, stale = lint.apply_baseline(result.findings, entries)
    assert active == []
    assert stale == [], "baseline entries no longer match any finding"
    assert len(baselined) == len(entries)


def test_self_lint_catches_a_seeded_regression(tmp_path):
    # Copy the real package, seed one violation, and make sure the
    # analyzer (with the real baseline) fails — the property the CI
    # lint job relies on.
    import shutil

    src = repo_root() / "src" / "repro"
    root = tmp_path
    shutil.copytree(src, root / "repro")
    shutil.copy(repo_root() / "lint-baseline.json", root / "lint-baseline.json")
    (root / "pyproject.toml").write_text("[project]\nname = 'copy'\n")
    target = root / "repro" / "core" / "common.py"
    target.write_text(
        target.read_text() + "\n\ndef _stamp():\n    import time\n    return time.time()\n"
    )
    assert lint_cmd(root) == 1


# ------------------------------------------------- select / changed / sarif

def test_select_scopes_the_run_to_named_rules(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    assert lint_cmd(root, "--select", "lock-discipline,frozen-graph") == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert lint_cmd(root, "--select", "determinism") == 1


def test_select_rejects_unknown_rule_names(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": CLEAN})
    assert lint_cmd(root, "--select", "no-such-rule") == 2
    assert "no-such-rule" in capsys.readouterr().err


def test_select_run_does_not_report_baseline_staleness(tmp_path, capsys):
    # A scoped run proves nothing about entries for rules that did not
    # run; it must not nag about (or prune) them.
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    baseline = root / "lint-baseline.json"
    result = lint.LintEngine(root).run([root / "repro"])
    lint.write_baseline(baseline, result.findings)
    payload = json.loads(baseline.read_text())
    payload["entries"][0]["justification"] = "benign"
    baseline.write_text(json.dumps(payload))

    assert lint_cmd(root, "--select", "frozen-graph") == 0
    assert "stale" not in capsys.readouterr().out


def test_changed_falls_open_to_a_full_run_outside_git(tmp_path, capsys):
    # No repository to diff against: fail open rather than silently
    # linting nothing.
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    assert lint_cmd(root, "--changed") == 1
    captured = capsys.readouterr()
    assert "determinism" in captured.out
    assert "could not consult git" in captured.err


def test_sarif_output_parses_and_carries_fingerprints(tmp_path, capsys):
    root = project(tmp_path, {"repro/core/ops.py": VIOLATION})
    assert lint_cmd(root, "--format", "sarif") == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "determinism" in rule_ids and "lock-order" in rule_ids
    (res,) = [r for r in run["results"] if "suppressions" not in r]
    assert res["ruleId"] == "determinism"
    assert res["partialFingerprints"]["reproLint/v2"]
    region = res["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1


def test_sarif_marks_suppressed_findings(tmp_path, capsys):
    root = project(tmp_path, {
        "repro/core/ops.py": textwrap.dedent("""\
            import time


            def wall():
                # lint: allow(determinism): fixture timestamp only
                return time.time()
        """),
    })
    assert lint_cmd(root, "--format", "sarif") == 0
    doc = json.loads(capsys.readouterr().out)
    (res,) = doc["runs"][0]["results"]
    (suppression,) = res["suppressions"]
    assert suppression["kind"] == "inSource"
