"""The pragma grammar and the engine's configuration findings."""

import pytest

from repro.errors import LintError
from repro.lint import extract_annotations
from tests.lint.conftest import rule_findings


def test_guarded_by_and_holds_lock_parse():
    annotations = extract_annotations(
        "class C:\n"
        "    def __init__(self):\n"
        "        self.a = 0  # guarded-by: _lock\n"
        "        self.b = 0  # guarded-by: _a, _b\n"
        "    def f(self):  # holds-lock: _lock\n"
        "        pass\n"
    )
    assert annotations.guarded_by[3] == ("_lock",)
    assert annotations.guarded_by[4] == ("_a", "_b")
    assert annotations.holds_lock[5] == ("_lock",)


def test_allow_pragma_requires_justification():
    extract_annotations("x = 1  # lint: allow(determinism): seeded upstream\n")
    with pytest.raises(LintError, match="justification"):
        extract_annotations("x = 1  # lint: allow(determinism)\n")


def test_malformed_allow_pragma_is_an_error():
    # A silent misspelling would *enable* a rule the author believed
    # was suppressed.
    with pytest.raises(LintError, match="malformed"):
        extract_annotations("x = 1  # lint: allow determinism: oops\n")


def test_allow_applies_to_line_and_line_above():
    annotations = extract_annotations(
        "# lint: allow(determinism): covered below\n"
        "x = 1\n"
        "y = 2  # lint: allow(all): same line\n"
    )
    assert annotations.allows_for(2, "determinism")
    assert annotations.allows_for(3, "frozen-graph")  # 'all' matches any rule
    assert not annotations.allows_for(2, "frozen-graph")  # wrong rule
    assert not annotations.allows_for(5, "determinism")  # out of reach


def test_inline_allow_suppresses_and_is_reported(lint_project):
    result = lint_project({"repro/core/algo.py": """\
        import time


        def stamped():
            # lint: allow(determinism): stamp is display-only, never fed back
            return time.time()
    """})
    assert rule_findings(result, "determinism") == []
    assert [f.rule for f in result.suppressed] == ["determinism"]
    assert result.suppressed[0].suppressed_by == "inline-allow"


def test_allow_of_unknown_rule_is_a_config_finding(lint_project):
    result = lint_project({"repro/core/algo.py": """\
        x = 1  # lint: allow(determinsm): typo in the rule name
    """})
    findings = rule_findings(result, "lint-config")
    assert len(findings) == 1
    assert "determinsm" in findings[0].message


def test_unattached_guarded_by_is_a_config_finding(lint_project):
    result = lint_project({"repro/state.py": """\
        # guarded-by: _lock
        EPOCH = 0
    """})
    findings = rule_findings(result, "lint-config")
    assert len(findings) == 1
    assert "not attached" in findings[0].message


def test_unattached_holds_lock_is_a_config_finding(lint_project):
    result = lint_project({"repro/state.py": """\
        class C:
            pass
        # holds-lock: _lock
    """})
    findings = rule_findings(result, "lint-config")
    assert len(findings) == 1
    assert "def" in findings[0].message


def test_syntax_error_is_a_config_finding(lint_project):
    result = lint_project({"repro/broken.py": "def f(:\n"})
    findings = rule_findings(result, "lint-config")
    assert len(findings) == 1
    assert "does not parse" in findings[0].message
    # The broken module is excluded from the scan count.
    assert result.modules_scanned == 0
