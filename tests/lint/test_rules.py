"""Positive and negative fixture snippets for every lint rule.

Each rule gets at least one snippet that must fire and one twin that
must stay silent; the negatives encode the sanctioned idioms the rules
were designed around (snapshot-under-lock, run_in_executor, seeded
RNGs, the errors doctrine), so a regression here means the analyzer
started fighting the codebase's own style.
"""

from tests.lint.conftest import rule_findings

# ---------------------------------------------------------------- locks

LOCKED_CLASS = """\
    import threading


    class State:
        def __init__(self):
            self._lock = threading.Lock()
            self.epoch = 0  # guarded-by: _lock

        def bad(self):
            return self.epoch

        def good(self):
            with self._lock:
                return self.epoch

        def helper(self):  # holds-lock: _lock
            return self.epoch

        def snapshot(self):
            with self._lock:
                epoch = self.epoch
            return epoch
"""


def test_lock_discipline_positive(lint_project):
    result = lint_project({"repro/state.py": LOCKED_CLASS})
    findings = rule_findings(result, "lock-discipline")
    assert len(findings) == 1
    (finding,) = findings
    assert finding.context == "State.bad"
    assert "_lock" in finding.message


def test_lock_discipline_negative_idioms(lint_project):
    # Drop the one offender: with-block, holds-lock pragma,
    # snapshot-then-use and __init__ must all stay silent.
    source = LOCKED_CLASS.replace(
        "    def bad(self):\n            return self.epoch\n\n", ""
    )
    result = lint_project({"repro/state.py": source})
    assert rule_findings(result, "lock-discipline") == []


def test_lock_discipline_closure_resets_held_locks(lint_project):
    result = lint_project({"repro/state.py": """\
        import threading


        class State:
            def __init__(self):
                self._lock = threading.Lock()
                self.epoch = 0  # guarded-by: _lock

            def make_callback(self):
                with self._lock:
                    def callback():
                        return self.epoch
                    return callback

            def make_safe_callback(self):
                with self._lock:
                    def callback():  # holds-lock: _lock
                        return self.epoch
                    return callback
    """})
    findings = rule_findings(result, "lock-discipline")
    # The closure outlives the with-block, so the first callback is a
    # race; the second re-declares its guarantee and is accepted.
    assert len(findings) == 1
    assert findings[0].context == "State.make_callback.callback"


def test_lock_discipline_is_self_scoped(lint_project):
    # Accesses through an alias of another object are out of scope by
    # design (the snapshot idiom); only `self.<attr>` is checked.
    result = lint_project({"repro/state.py": """\
        import threading


        class State:
            def __init__(self):
                self._lock = threading.Lock()
                self.epoch = 0  # guarded-by: _lock


        def outside(state):
            return state.epoch
    """})
    assert rule_findings(result, "lock-discipline") == []


def test_multiple_locks_all_required(lint_project):
    result = lint_project({"repro/state.py": """\
        import threading


        class State:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self.shared = 0  # guarded-by: _a, _b

            def half(self):
                with self._a:
                    return self.shared

            def both(self):
                with self._a:
                    with self._b:
                        return self.shared
    """})
    findings = rule_findings(result, "lock-discipline")
    assert len(findings) == 1
    assert findings[0].context == "State.half"


# ---------------------------------------------------------- async-safety

ASYNC_HANDLERS = """\
    import asyncio
    import time


    async def bad_handler():
        time.sleep(0.1)

    async def good_handler():
        await asyncio.sleep(0.1)

    async def executor_handler(loop):
        def work():
            return open("data.txt").read()
        return await loop.run_in_executor(None, work)
"""


def test_async_blocking_positive(lint_project):
    result = lint_project({"repro/service/handlers.py": ASYNC_HANDLERS})
    findings = rule_findings(result, "async-blocking")
    assert len(findings) == 1
    assert findings[0].context == "bad_handler"
    assert "time.sleep" in findings[0].message


def test_async_blocking_ignores_awaits_and_executor_targets(lint_project):
    source = ASYNC_HANDLERS.replace(
        "    async def bad_handler():\n        time.sleep(0.1)\n\n", ""
    )
    result = lint_project({"repro/service/handlers.py": source})
    assert rule_findings(result, "async-blocking") == []


def test_async_blocking_scoped_to_service(lint_project):
    # The same offender outside repro/service/ is out of scope.
    result = lint_project({"repro/analysis/handlers.py": ASYNC_HANDLERS})
    assert rule_findings(result, "async-blocking") == []


def test_async_blocking_bare_future_result(lint_project):
    result = lint_project({"repro/service/joins.py": """\
        async def joiner(fut):
            return fut.result()

        async def poller(fut):
            return fut.result(0)
    """})
    findings = rule_findings(result, "async-blocking")
    # A no-arg .result() blocks until completion; .result(0) polls.
    assert len(findings) == 1
    assert findings[0].context == "joiner"


def test_async_blocking_covers_fleet_package(lint_project):
    # The fleet router is a second asyncio surface: the same offender
    # under repro/fleet/ is in scope.
    result = lint_project({"repro/fleet/router.py": ASYNC_HANDLERS})
    findings = rule_findings(result, "async-blocking")
    assert len(findings) == 1
    assert findings[0].context == "bad_handler"


def test_async_blocking_covers_livetip_package(lint_project):
    # The live-tip overlay sits on the service's hot path (the update
    # lane's executor hand-off): the same offender under
    # repro/livetip/ is in scope.
    result = lint_project({"repro/livetip/overlay2.py": ASYNC_HANDLERS})
    findings = rule_findings(result, "async-blocking")
    assert len(findings) == 1
    assert findings[0].context == "bad_handler"


def test_async_blocking_covers_autopilot_package(lint_project):
    # The autopilot acts on the fleet's event loop through FleetRunner;
    # any async code it grows must obey the same no-blocking law.
    result = lint_project({"repro/autopilot/loop2.py": ASYNC_HANDLERS})
    findings = rule_findings(result, "async-blocking")
    assert len(findings) == 1
    assert findings[0].context == "bad_handler"


def test_async_blocking_covers_resilience_module(lint_project):
    # The retry/breaker helpers run on the event loop too: the same
    # time.sleep that is flagged under repro/service/ is flagged in
    # repro/resilience.py.
    result = lint_project({"repro/resilience.py": ASYNC_HANDLERS})
    findings = rule_findings(result, "async-blocking")
    assert len(findings) == 1
    assert findings[0].context == "bad_handler"


def test_async_blocking_sync_joins_flagged(lint_project):
    result = lint_project({"repro/service/admission.py": """\
        import threading


        class Gate:
            def __init__(self):
                self._lock = threading.Lock()

            async def admit(self):
                self._lock.acquire()

            async def drain(self, thread):
                thread.join()
    """})
    findings = rule_findings(result, "async-blocking")
    assert len(findings) == 2
    assert {f.context for f in findings} == {"Gate.admit", "Gate.drain"}
    assert any(".acquire()" in f.message for f in findings)
    assert any(".join()" in f.message for f in findings)


def test_async_blocking_asyncio_primitives_exempt(lint_project):
    # A semaphore constructed from asyncio has a *coroutine* acquire —
    # handing it to asyncio.wait_for is the non-blocking idiom, not a
    # stall, so receivers assigned from asyncio.* are not flagged.
    result = lint_project({"repro/service/admission.py": """\
        import asyncio


        class Gate:
            def __init__(self):
                self._semaphore = asyncio.Semaphore(4)
                self._updates = asyncio.Queue()

            async def admit(self, budget):
                await asyncio.wait_for(self._semaphore.acquire(),
                                       timeout=budget)

            async def next_update(self, budget):
                return await asyncio.wait_for(self._updates.get(),
                                              timeout=budget)
    """})
    assert rule_findings(result, "async-blocking") == []


# --------------------------------------------------------- frozen-graph

MUTATOR = """\
    import numpy as np


    def clobber(graph):
        graph.indptr[0] = 7

    def reorder(edges):
        edges._codes.sort()

    def alias(graph, deltas):
        np.add(graph.weights, deltas, out=graph.weights)

    def degrees(graph):
        return graph.indptr[1:] - graph.indptr[:-1]
"""


def test_frozen_graph_positive(lint_project):
    result = lint_project({"repro/analysis/mut.py": MUTATOR})
    findings = rule_findings(result, "frozen-graph")
    contexts = sorted(f.context for f in findings)
    # assignment-into, in-place sort and out= aliasing all fire;
    # the read-only degrees computation does not.
    assert contexts == ["alias", "clobber", "reorder"]


def test_frozen_graph_exempts_graph_package(lint_project):
    result = lint_project({"repro/graph/builder.py": MUTATOR})
    assert rule_findings(result, "frozen-graph") == []


def test_frozen_graph_exempts_own_init_slot(lint_project):
    result = lint_project({"repro/analysis/model.py": """\
        class Model:
            def __init__(self):
                self.weights = [1.0, 2.0]

            def retrain(self):
                self.weights = [0.0]
    """})
    findings = rule_findings(result, "frozen-graph")
    # `self.weights` in a foreign __init__ is that class's own slot;
    # re-assigning it later is indistinguishable from a graph write
    # and stays flagged.
    assert len(findings) == 1
    assert findings[0].context == "Model.retrain"


# ------------------------------------------------------- error-taxonomy

def test_taxonomy_generic_raise_positive_and_negative(lint_project):
    result = lint_project({"repro/util2.py": """\
        from repro.errors import EngineError


        def bad():
            raise RuntimeError("boom")

        def contract(n):
            if n < 0:
                raise ValueError("n must be >= 0")

        def domain():
            raise EngineError("tile failed")
    """})
    findings = rule_findings(result, "error-taxonomy")
    assert len(findings) == 1
    assert findings[0].context == "bad"
    assert "RuntimeError" in findings[0].message


def test_taxonomy_broad_handler_positive_and_negative(lint_project):
    result = lint_project({"repro/util2.py": """\
        from repro.errors import EngineError


        def swallow(work):
            try:
                work()
            except Exception:
                pass

        def converts(work):
            try:
                work()
            except Exception as exc:
                raise EngineError(str(exc))

        def logs(work, log):
            try:
                work()
            except Exception as exc:
                log.warning("failed: %s", exc)

        def records(work, outcomes):
            try:
                work()
            except Exception:
                outcomes.append("failed")
    """})
    findings = rule_findings(result, "error-taxonomy")
    assert len(findings) == 1
    assert findings[0].context == "swallow"


def test_taxonomy_bare_except_must_reraise(lint_project):
    result = lint_project({"repro/util2.py": """\
        def guarded(work, log):
            try:
                work()
            except:
                log.warning("failed")

        def reraises(work, cleanup):
            try:
                work()
            except:
                cleanup()
                raise
    """})
    findings = rule_findings(result, "error-taxonomy")
    # Referencing/recording is not enough for a *bare* except — only a
    # raise is.
    assert len(findings) == 1
    assert findings[0].context == "guarded"


# --------------------------------------------------------- determinism

IMPURE = """\
    import random
    import time

    import numpy as np


    def wall():
        return time.time()

    def stall():
        time.sleep(0.1)

    def draw():
        return random.random()

    def unseeded():
        return np.random.default_rng()

    def seeded(seed):
        return np.random.default_rng(seed)

    def telemetry():
        start = time.perf_counter()
        return time.perf_counter() - start
"""


def test_determinism_positive(lint_project):
    result = lint_project({"repro/core/algo.py": IMPURE})
    findings = rule_findings(result, "determinism")
    contexts = sorted(f.context for f in findings)
    # Seeded construction and perf_counter telemetry are sanctioned;
    # everything else in the fixture is a determinism leak.
    assert contexts == ["draw", "stall", "unseeded", "wall"]


def test_determinism_scoped_to_algorithm_packages(lint_project):
    result = lint_project({
        "repro/bench/algo.py": IMPURE,
        "repro/kickstarter/algo.py": "import time\n\ndef f():\n    return time.time()\n",
    })
    findings = rule_findings(result, "determinism")
    # bench/ may read clocks; kickstarter/ may not.
    assert [f.path for f in findings] == ["repro/kickstarter/algo.py"]


def test_determinism_covers_temporal_package(lint_project):
    # Temporal answers must be replayable: as-of-timestamp resolution
    # works off ingest stamps passed *in* (version_times), never off a
    # wall clock read inside repro/temporal/.
    result = lint_project({"repro/temporal/engine2.py": IMPURE})
    findings = rule_findings(result, "determinism")
    contexts = sorted(f.context for f in findings)
    assert contexts == ["draw", "stall", "unseeded", "wall"]


def test_determinism_covers_livetip_package(lint_project):
    # Per-update receipts must replay bit-identically (and fleet
    # replicas must agree on them): repro/livetip/ may not read the
    # wall clock or an unseeded RNG — age-based compaction works off
    # an *injected* time_fn only.
    result = lint_project({"repro/livetip/overlay2.py": IMPURE})
    findings = rule_findings(result, "determinism")
    contexts = sorted(f.context for f in findings)
    assert contexts == ["draw", "stall", "unseeded", "wall"]


def test_determinism_covers_autopilot_package(lint_project):
    # Autopilot decisions must be replayable: the policy works off an
    # injected clock and a seeded jitter RNG, never the wall clock or
    # the global RNG — the same fixture is flagged under
    # repro/autopilot/ exactly as under repro/core/.
    result = lint_project({"repro/autopilot/policy2.py": IMPURE})
    findings = rule_findings(result, "determinism")
    contexts = sorted(f.context for f in findings)
    assert contexts == ["draw", "stall", "unseeded", "wall"]


ALIASED_CLOCKS = """\
    import time as t
    from time import time
    from datetime import datetime


    def aliased_module():
        return t.time()

    def aliased_name():
        return time()

    def from_import_method():
        return datetime.now()

    def naked_method(event):
        return event.utcnow()
"""


def test_determinism_sees_through_import_aliases(lint_project):
    result = lint_project({"repro/core/algo.py": ALIASED_CLOCKS})
    findings = rule_findings(result, "determinism")
    contexts = sorted(f.context for f in findings)
    # Aliasing the clock in does not launder it, and calendar-clock
    # methods on arbitrary receivers are treated as wall-clock reads.
    assert contexts == [
        "aliased_module", "aliased_name", "from_import_method",
        "naked_method",
    ]


INJECTED_CLOCK = """\
    from repro import obs
    from repro.obs.clock import Clock


    class Timed:
        def __init__(self, clock):
            self.clock = clock
            self._clock = clock

        def measure(self):
            start = self.clock.now()
            with obs.phase_span("kernel", "step"):
                pass
            obs.counter_inc("repro_spans_total")
            return self._clock.now() - start

    def free_function(clock):
        return clock.now()
"""


def test_determinism_sanctions_injected_clock_and_obs(lint_project):
    result = lint_project({"repro/kickstarter/algo.py": INJECTED_CLOCK})
    findings = rule_findings(result, "determinism")
    # Injected Clock receivers (clock/_clock) and the obs facade are the
    # sanctioned instrumentation pattern: no findings.
    assert findings == []
