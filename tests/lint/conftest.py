"""Fixture helpers for the lint-engine tests.

Each test writes a tiny synthetic project (a dict of package-relative
paths to sources) into ``tmp_path`` and runs the real engine over it,
so every assertion exercises discovery, annotation extraction, the
project index and the rules exactly as ``python -m repro lint`` does.
"""

import textwrap

import pytest

from repro.lint import LintEngine


@pytest.fixture
def lint_project(tmp_path):
    def run(files, rules=None):
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        engine = LintEngine(tmp_path, rules=rules)
        return engine.run()

    return run


def rule_findings(result, rule):
    """Findings of one rule, sorted the way the engine reports them."""
    return [f for f in result.findings if f.rule == rule]
