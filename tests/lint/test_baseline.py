"""Baseline round-trips, justification enforcement, fingerprints, JSON."""

import dataclasses
import json

import pytest

from repro.errors import LintError
from repro.lint import (
    Finding,
    LintResult,
    PLACEHOLDER_JUSTIFICATION,
    apply_baseline,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)


def make_finding(**overrides):
    base = dict(
        rule="determinism",
        path="repro/core/algo.py",
        line=7,
        col=4,
        message="wall-clock read",
        context="wall",
    )
    base.update(overrides)
    return Finding(**base)


# ---------------------------------------------------------- fingerprints

def test_fingerprint_survives_line_shifts():
    a = make_finding()
    b = dataclasses.replace(a, line=99, col=0)
    assert a.fingerprint == b.fingerprint


def test_fingerprint_distinguishes_rule_context_message():
    a = make_finding()
    for field, value in [
        ("rule", "frozen-graph"),
        ("context", "stall"),
        ("message", "different"),
    ]:
        assert make_finding(**{field: value}).fingerprint != a.fingerprint


def test_fingerprint_survives_file_renames():
    # v2 identity is path-independent: moving the module does not
    # invalidate a justified baseline entry.
    a = make_finding()
    b = dataclasses.replace(a, path="repro/fleet/algo.py", line=3)
    assert a.fingerprint == b.fingerprint


# ----------------------------------------------------------- round-trip

def test_write_then_load_round_trip(tmp_path):
    path = tmp_path / "lint-baseline.json"
    finding = make_finding()
    write_baseline(path, [finding])

    # Fresh entries carry the FIXME placeholder, which refuses to load:
    # a baseline must be justified before it is usable.
    with pytest.raises(LintError, match="no justification"):
        load_baseline(path)

    payload = json.loads(path.read_text())
    payload["entries"][0]["justification"] = "benign: covered by tests"
    path.write_text(json.dumps(payload))

    entries = load_baseline(path)
    assert len(entries) == 1
    assert entries[0].fingerprint == finding.fingerprint

    # A second write preserves the human-authored justification.
    write_baseline(path, [finding], previous=entries)
    assert load_baseline(path)[0].justification == "benign: covered by tests"


def test_apply_baseline_splits_active_baselined_stale(tmp_path):
    path = tmp_path / "lint-baseline.json"
    old = make_finding(message="grandfathered")
    gone = make_finding(message="since fixed")
    write_baseline(path, [old, gone])
    payload = json.loads(path.read_text())
    for entry in payload["entries"]:
        entry["justification"] = "benign"
    path.write_text(json.dumps(payload))
    entries = load_baseline(path)

    fresh = make_finding(message="brand new")
    active, baselined, stale = apply_baseline([old, fresh], entries)
    assert [f.message for f in active] == ["brand new"]
    assert [f.message for f in baselined] == ["grandfathered"]
    assert baselined[0].suppressed_by == "baseline"
    assert [e.message for e in stale] == ["since fixed"]


# ----------------------------------------------------------- validation

def write_payload(tmp_path, payload):
    path = tmp_path / "lint-baseline.json"
    path.write_text(json.dumps(payload))
    return path


def entry_dict(**overrides):
    base = make_finding().as_dict()
    doc = {
        "rule": base["rule"],
        "path": base["path"],
        "context": base["context"],
        "message": base["message"],
        "fingerprint": base["fingerprint"],
        "justification": "benign",
    }
    doc.update(overrides)
    return doc


def test_load_rejects_bad_json_and_bad_version(tmp_path):
    path = tmp_path / "lint-baseline.json"
    path.write_text("{not json")
    with pytest.raises(LintError, match="not valid JSON"):
        load_baseline(path)
    with pytest.raises(LintError, match="version"):
        load_baseline(write_payload(tmp_path, {"version": 3, "entries": []}))


def test_load_rejects_missing_keys(tmp_path):
    doc = entry_dict()
    del doc["fingerprint"]
    path = write_payload(tmp_path, {"version": 1, "entries": [doc]})
    with pytest.raises(LintError, match="fingerprint"):
        load_baseline(path)


def test_load_rejects_placeholder_and_empty_justification(tmp_path):
    for justification in ("", "   ", PLACEHOLDER_JUSTIFICATION):
        path = write_payload(tmp_path, {
            "version": 1,
            "entries": [entry_dict(justification=justification)],
        })
        with pytest.raises(LintError, match="no justification"):
            load_baseline(path)


def test_load_rejects_duplicate_fingerprints(tmp_path):
    path = write_payload(tmp_path, {
        "version": 2,
        "entries": [entry_dict(), entry_dict()],
    })
    with pytest.raises(LintError, match="duplicate fingerprint"):
        load_baseline(path)


# ----------------------------------------------------------- migration

def test_v1_baseline_loads_with_recomputed_fingerprints(tmp_path):
    # A v1 file carries path-dependent fingerprints; loading migrates
    # each entry to the v2 identity so it still suppresses findings.
    finding = make_finding()
    path = write_payload(tmp_path, {
        "version": 1,
        "entries": [entry_dict(fingerprint="0123456789abcdef")],
    })
    entries = load_baseline(path)
    assert entries[0].fingerprint == finding.fingerprint
    active, baselined, stale = apply_baseline([finding], entries)
    assert not active and not stale
    assert [f.message for f in baselined] == [finding.message]


def test_v1_duplicate_entries_merge_on_load(tmp_path):
    # Two v1 entries for the same defect under different paths collapse
    # onto one v2 fingerprint; the first justification wins.
    path = write_payload(tmp_path, {
        "version": 1,
        "entries": [
            entry_dict(justification="first"),
            entry_dict(path="repro/fleet/algo.py", justification="second"),
        ],
    })
    entries = load_baseline(path)
    assert len(entries) == 1
    assert entries[0].justification == "first"


def test_rename_keeps_baseline_entry_matching(tmp_path):
    # Round-trip regression for the rename guarantee: write under one
    # path, rename the module, the entry still matches.
    path = tmp_path / "lint-baseline.json"
    finding = make_finding()
    write_baseline(path, [finding])
    payload = json.loads(path.read_text())
    payload["entries"][0]["justification"] = "benign: covered by tests"
    path.write_text(json.dumps(payload))
    entries = load_baseline(path)

    moved = dataclasses.replace(finding, path="repro/fleet/algo.py", line=2)
    active, baselined, stale = apply_baseline([moved], entries)
    assert not active and not stale
    assert baselined[0].path == "repro/fleet/algo.py"


def test_write_baseline_dedupes_colliding_fingerprints(tmp_path):
    # The same defect in two files produces one entry: v2 fingerprints
    # are path-independent, and one justification covers both sites.
    path = tmp_path / "lint-baseline.json"
    a = make_finding()
    b = dataclasses.replace(a, path="repro/fleet/algo.py")
    entries = write_baseline(path, [a, b])
    assert len(entries) == 1
    payload = json.loads(path.read_text())
    assert payload["version"] == 2
    assert len(payload["entries"]) == 1


# -------------------------------------------------------------- reports

def test_render_json_schema_round_trip():
    result = LintResult(
        findings=[make_finding()],
        suppressed=[make_finding(suppressed_by="inline-allow")],
        modules_scanned=3,
        rules_run=["determinism"],
    )
    payload = json.loads(render_json(result))
    assert payload["version"] == 1
    assert payload["ok"] is False
    assert payload["modules_scanned"] == 3
    assert payload["counts"] == {"determinism": 1}
    (finding,) = payload["findings"]
    assert finding["fingerprint"] == make_finding().fingerprint
    assert payload["suppressed"][0]["suppressed_by"] == "inline-allow"
    assert payload["stale_baseline"] == []


def test_render_text_summary(tmp_path):
    result = LintResult(
        findings=[make_finding()], modules_scanned=2,
        rules_run=["determinism"],
    )
    path = tmp_path / "lint-baseline.json"
    write_baseline(path, [make_finding(message="stale one")])
    payload = json.loads(path.read_text())
    payload["entries"][0]["justification"] = "benign"
    path.write_text(json.dumps(payload))
    stale = load_baseline(path)

    text = render_text(result, baselined=[], stale_entries=stale)
    assert "1 finding(s) (determinism: 1) in 2 module(s)" in text
    assert "stale baseline entry" in text
    assert "repro/core/algo.py:7:4: determinism:" in text
