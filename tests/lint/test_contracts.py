"""The project-wide contract rules, driven by synthetic fixture projects.

Each test seeds one specific drift — missing handler, phantom op, dead
instrument, label mismatch, docs skew — and asserts it is caught by
exactly the intended rule, at the intended layer.  The clean fixtures
double as negative controls: a coherent project must produce zero
contract findings.
"""

import textwrap

from repro.lint import LintEngine
from repro.lint.rules.contracts import InstrumentContractRule, WireContractRule

from tests.lint.conftest import rule_findings


def contract_rules():
    return [WireContractRule(), InstrumentContractRule()]


# ------------------------------------------------------------- fixtures

def wire_fixture(**overrides):
    files = {
        "repro/service/protocol.py": """
            OPS = ("ping", "query")


            def validate_request(doc):
                if doc.get("op") not in OPS:
                    raise ValueError("unknown op")
        """,
        "repro/service/server.py": """
            class Server:
                async def _dispatch(self, doc):
                    op = doc["op"]
                    if op == "ping":
                        return {"ok": True, "op": "ping"}
                    return await self._handle_query(doc)

                async def _handle_query(self, doc):
                    return {"ok": True, "op": "query"}

                async def _handle_connection(self, reader, writer):
                    return None
        """,
        "repro/service/client.py": """
            class ServiceClient:
                def ping(self):
                    return self.request({"op": "ping"})

                def query(self, algorithm, source):
                    return self.request({"op": "query", "source": source})

                def request(self, doc):
                    return doc
        """,
        "repro/fleet/router.py": """
            class FleetRouter:
                async def _dispatch(self, doc):
                    op = doc["op"]
                    if op == "ping":
                        return {"ok": True, "op": "ping"}
                    return await self._handle_query(doc)

                async def _handle_query(self, doc):
                    return {"ok": True}
        """,
        "repro/cli.py": """
            def cmd_ping(client):
                return client.ping()


            def cmd_query(client):
                return client.query("SSSP", 0)
        """,
    }
    files.update(overrides)
    return files


def instrument_fixture(**overrides):
    files = {
        "repro/obs/instruments.py": """
            INSTRUMENTS = {
                "repro_requests_total": InstrumentSpec(
                    "counter", "requests by op", ("op",),
                ),
                "repro_queue_depth": InstrumentSpec("gauge", "queue depth"),
            }
        """,
        "repro/service/server.py": """
            from repro import obs


            def handle(registry, op):
                obs.counter_inc("repro_requests_total", op=op)

                def gauge(name, value, **labels):
                    obs.instruments.family(registry, name).labels(
                        **labels).set(value)

                gauge("repro_queue_depth", 3)
        """,
    }
    files.update(overrides)
    return files


# ---------------------------------------------------------- wire: clean

def test_coherent_wire_project_is_clean(lint_project):
    result = lint_project(wire_fixture(), rules=contract_rules())
    assert rule_findings(result, "wire-contract") == []


def test_wire_rule_silent_without_protocol_module(lint_project):
    files = wire_fixture()
    del files["repro/service/protocol.py"]
    result = lint_project(files, rules=contract_rules())
    assert rule_findings(result, "wire-contract") == []


def test_wire_rule_skips_absent_layers(lint_project):
    files = wire_fixture()
    del files["repro/cli.py"]
    result = lint_project(files, rules=contract_rules())
    assert rule_findings(result, "wire-contract") == []


# ------------------------------------------------- wire: seeded drift

def test_missing_server_dispatch_branch_is_caught(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/service/server.py": """
            class Server:
                async def _dispatch(self, doc):
                    return await self._handle_query(doc)

                async def _handle_query(self, doc):
                    return {"ok": True, "op": "query"}
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "wire-contract")
    assert len(findings) == 1
    assert findings[0].path == "repro/service/server.py"
    assert "op 'ping'" in findings[0].message
    assert "server" in findings[0].message


def test_missing_client_method_is_caught(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/service/client.py": """
            class ServiceClient:
                def query(self, algorithm, source):
                    return self.request({"op": "query", "source": source})

                def request(self, doc):
                    return doc
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "wire-contract")
    assert [f.path for f in findings] == ["repro/service/client.py"]
    assert "op 'ping'" in findings[0].message


def test_missing_router_path_is_caught(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/fleet/router.py": """
            class FleetRouter:
                async def _dispatch(self, doc):
                    op = doc["op"]
                    if op == "ping":
                        return {"ok": True, "op": "ping"}
                    raise ValueError("no reads here")
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "wire-contract")
    assert [f.path for f in findings] == ["repro/fleet/router.py"]
    assert "op 'query'" in findings[0].message


def test_missing_cli_surface_is_caught(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/cli.py": """
            def cmd_query(client):
                return client.query("SSSP", 0)
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "wire-contract")
    assert [f.path for f in findings] == ["repro/cli.py"]
    assert "op 'ping'" in findings[0].message


def test_phantom_op_is_caught_at_the_speaking_layer(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/fleet/router.py": """
            class FleetRouter:
                async def _dispatch(self, doc):
                    op = doc["op"]
                    if op == "ping":
                        return {"ok": True, "op": "ping"}
                    if op == "snapshot":
                        return {"ok": True}
                    return await self._handle_query(doc)

                async def _handle_query(self, doc):
                    return {"ok": True}
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "wire-contract")
    assert len(findings) == 1
    assert findings[0].path == "repro/fleet/router.py"
    assert "phantom" in findings[0].message
    assert "'snapshot'" in findings[0].message


def test_phantom_op_in_request_payload_is_caught(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/service/client.py": """
            class ServiceClient:
                def ping(self):
                    return self.request({"op": "ping"})

                def query(self, algorithm, source):
                    return self.request({"op": "query", "source": source})

                def snapshot(self):
                    return self.request({"op": "snapshot"})

                def request(self, doc):
                    return doc
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "wire-contract")
    assert len(findings) == 1
    assert "'snapshot'" in findings[0].message


def test_inline_allow_suppresses_a_contract_finding(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/service/client.py": """
            class ServiceClient:
                def ping(self):
                    return self.request({"op": "ping"})

                def query(self, algorithm, source):
                    return self.request({"op": "query", "source": source})

                def snapshot(self):
                    # lint: allow(wire-contract): staged ahead of the bump
                    return self.request({"op": "snapshot"})

                def request(self, doc):
                    return doc
        """,
    }), rules=contract_rules())
    assert rule_findings(result, "wire-contract") == []
    assert [f.rule for f in result.suppressed] == ["wire-contract"]


def test_unparseable_ops_tuple_is_itself_a_finding(lint_project):
    result = lint_project(wire_fixture(**{
        "repro/service/protocol.py": """
            OPS = tuple(sorted(["ping", "query"]))
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "wire-contract")
    assert len(findings) == 1
    assert "statically enumerable" in findings[0].message


# ---------------------------------------------------- instruments: clean

def test_coherent_instrument_project_is_clean(lint_project):
    result = lint_project(instrument_fixture(), rules=contract_rules())
    assert rule_findings(result, "instrument-contract") == []


def test_instrument_rule_silent_without_registry_module(lint_project):
    result = lint_project({
        "repro/core/ops.py": "def identity(x):\n    return x\n",
    }, rules=contract_rules())
    assert rule_findings(result, "instrument-contract") == []


# -------------------------------------------- instruments: seeded drift

def test_dead_instrument_is_flagged_at_its_declaration(lint_project):
    result = lint_project(instrument_fixture(**{
        "repro/obs/instruments.py": """
            INSTRUMENTS = {
                "repro_requests_total": InstrumentSpec(
                    "counter", "requests by op", ("op",),
                ),
                "repro_queue_depth": InstrumentSpec("gauge", "queue depth"),
                "repro_orphan_total": InstrumentSpec("counter", "unused"),
            }
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "instrument-contract")
    assert len(findings) == 1
    assert findings[0].path == "repro/obs/instruments.py"
    assert "dead instrument" in findings[0].message
    assert "'repro_orphan_total'" in findings[0].message


def test_label_mismatch_is_caught_at_the_emission_site(lint_project):
    result = lint_project(instrument_fixture(**{
        "repro/service/server.py": """
            from repro import obs


            def handle(op):
                obs.counter_inc("repro_requests_total", operation=op)
                obs.gauge_set("repro_queue_depth", 3)
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "instrument-contract")
    assert len(findings) == 1
    assert findings[0].path == "repro/service/server.py"
    assert "operation" in findings[0].message and "op" in findings[0].message


def test_undeclared_emission_is_caught(lint_project):
    result = lint_project(instrument_fixture(**{
        "repro/service/server.py": """
            from repro import obs


            def handle(registry, op):
                obs.counter_inc("repro_requests_total", op=op)

                def gauge(name, value, **labels):
                    obs.instruments.family(registry, name).labels(
                        **labels).set(value)

                gauge("repro_queue_depth", 3)
                obs.counter_inc("repro_ghost_total")
        """,
    }), rules=contract_rules())
    findings = rule_findings(result, "instrument-contract")
    assert len(findings) == 1
    assert "undeclared instrument" in findings[0].message
    assert "'repro_ghost_total'" in findings[0].message


def test_opaque_label_forwarding_is_not_checked(lint_project):
    # `**labels` at the call site can't be verified statically; the
    # rule must stay silent rather than guess.
    result = lint_project(instrument_fixture(**{
        "repro/service/state.py": """
            from repro import obs


            def emit(labels):
                obs.counter_inc("repro_requests_total", **labels)
        """,
    }), rules=contract_rules())
    assert rule_findings(result, "instrument-contract") == []


# ------------------------------------------------- instruments: docs

def docs_table(rows):
    lines = ["| metric | kind | meaning |", "| --- | --- | --- |"]
    lines += [f"| `{row}` | x | y |" for row in rows]
    return "# Observability\n\n" + "\n".join(lines) + "\n"


def test_docs_table_in_sync_is_clean(lint_project, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "observability.md").write_text(
        docs_table(["repro_requests_total{op}", "repro_queue_depth"])
    )
    result = lint_project(instrument_fixture(), rules=contract_rules())
    assert rule_findings(result, "instrument-contract") == []


def test_undocumented_instrument_is_caught(lint_project, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "observability.md").write_text(
        docs_table(["repro_requests_total{op}"])
    )
    result = lint_project(instrument_fixture(), rules=contract_rules())
    findings = rule_findings(result, "instrument-contract")
    assert len(findings) == 1
    assert "'repro_queue_depth'" in findings[0].message
    assert "missing from" in findings[0].message


def test_documented_ghost_metric_is_caught(lint_project, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "observability.md").write_text(
        docs_table(["repro_requests_total{op}", "repro_queue_depth",
                    "repro_legacy_total"])
    )
    result = lint_project(instrument_fixture(), rules=contract_rules())
    findings = rule_findings(result, "instrument-contract")
    assert len(findings) == 1
    assert findings[0].path == "docs/observability.md"
    assert "'repro_legacy_total'" in findings[0].message


def test_docs_label_skew_is_caught(lint_project, tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "observability.md").write_text(
        docs_table(["repro_requests_total{operation}", "repro_queue_depth"])
    )
    result = lint_project(instrument_fixture(), rules=contract_rules())
    findings = rule_findings(result, "instrument-contract")
    assert len(findings) == 1
    assert findings[0].path == "docs/observability.md"
    assert "operation" in findings[0].message


# ------------------------------------------------------ engine phasing

def test_restrict_scopes_module_rules_but_not_project_rules(tmp_path):
    # --changed hands the engine a restricted module set; per-module
    # rules skip everything else, but contract rules must still see the
    # whole tree — drift in an unchanged file is still drift.
    files = wire_fixture(**{
        "repro/core/clock.py": """
            import time


            def now():
                return time.time()
        """,
        "repro/cli.py": """
            def cmd_query(client):
                return client.query("SSSP", 0)
        """,
    })
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    engine = LintEngine(tmp_path)
    unrestricted = engine.run()
    assert {f.rule for f in unrestricted.findings} == {
        "determinism", "wire-contract"
    }
    restricted = engine.run(restrict={"repro/service/server.py"})
    assert {f.rule for f in restricted.findings} == {"wire-contract"}
