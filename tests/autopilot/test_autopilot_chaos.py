"""Autopilot chaos: a burst storm with a mid-storm kill, hands off.

The fleet chaos suite proves an *operator* can heal a broken fleet.
This suite takes the operator away: the autopilot runner is the only
thing allowed to touch membership.  A seeded burst storm (three waves
of clients against deliberately tight per-replica admission) overloads
the fleet while ``replica-0`` is killed mid-burst, and the loop must

* **heal** the killed replica (recover: restart + resync) on its own;
* **grow** the fleet under the sustained shed pressure — membership
  changes stay within the hysteresis bound (one per cooldown window);
* keep the fleet's conservation laws intact throughout: every storm
  request answered exactly once or explicitly shed, ingest receipts
  strictly consecutive, and post-storm answers on *every* replica —
  including the freshly provisioned ones — bit-identical to an offline
  ``WorkSharingEvaluator`` on the final store.
"""

from __future__ import annotations

import time

import pytest

from repro import faults
from repro.autopilot import AutopilotConfig, AutopilotRunner, FleetAutopilot
from repro.evolving.store import SnapshotStore
from repro.fleet import FleetSupervisor
from repro.resilience import RetryPolicy
from repro.service import AdmissionPolicy, ServiceConfig

from tests.conftest import assert_values_equal
from tests.fleet.test_fleet_chaos import FleetIngester
from tests.service.test_chaos import StormClient
from tests.service.test_server import offline_values

pytestmark = [pytest.mark.service, pytest.mark.chaos, pytest.mark.fleet,
              pytest.mark.autopilot]

N_CLIENTS = 24     # per wave
N_WAVES = 3
N_INGESTS = 4
SEED = 777
CONVERGE_TIMEOUT = 60.0


def replica_config(name: str) -> ServiceConfig:
    """Tight per-replica capacity: each wave must queue and shed."""
    return ServiceConfig(
        request_timeout=10.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.005,
                          multiplier=2.0, max_delay=0.02,
                          retry_on=(OSError,)),
        query_admission=AdmissionPolicy(max_concurrent=2, max_queue=2,
                                        queue_timeout=0.1),
        ingest_admission=AdmissionPolicy(max_concurrent=1, max_queue=8,
                                         queue_timeout=5.0),
        breaker_failure_threshold=3,
        breaker_reset_timeout=0.2,
    )


def autopilot_config() -> AutopilotConfig:
    """Aggressive observe/grow cadence, shrink effectively disabled —
    the storm is seconds long, so the loop must notice within it."""
    return AutopilotConfig(
        min_replicas=2,
        max_replicas=5,
        ewma_alpha=1.0,
        scale_up_pressure=0.15,
        scale_down_pressure=0.01,
        queue_pressure_depth=2,
        calm_cycles=10_000,          # never shrink inside this test
        grow_cooldown_s=1.5,
        shrink_cooldown_s=600.0,
        heal_cooldown_s=0.1,
        interval_s=0.05,
        jitter=0.2,
        jitter_seed=SEED,
        action_deadline_s=30.0,
    )


def converged(fleet, autopilot) -> bool:
    """Every owned replica running, in rotation, and at the fleet tip —
    and the loop both healed and grew at least once."""
    if autopilot.counters["heals"] < 1 or autopilot.counters["grows"] < 1:
        return False
    if autopilot.policy.in_flight is not None:
        return False
    if not all(replica.running for replica in fleet.replicas.values()):
        return False
    status = fleet.fleet_status()["fleet"]
    if sorted(status["rotation"]) != sorted(fleet.replicas):
        return False
    return all(doc["version"] == status["fleet_version"]
               for doc in status["replicas"].values())


class TestAutopilotStorm:
    def test_storm_with_kill_heals_and_grows_hands_off(
        self, tmp_path, base_store, fleet_weights, obs_runtime
    ):
        plan = faults.FaultPlan(seed=SEED)
        # Hangs: early queries hold their tight admission slots, so
        # each wave queues and sheds behind them.
        plan.delay_service(0.15, match="query:*", times=8)
        offsets = faults.burst_offsets(N_CLIENTS, spread=0.05, seed=SEED)

        supervisor = FleetSupervisor(
            base_store.directory, tmp_path / "fleet",
            replicas=3, weight_fn=fleet_weights,
            service_config=replica_config,
        )
        clients = []
        with supervisor as fleet:
            autopilot = FleetAutopilot(fleet, autopilot_config())
            with autopilot, AutopilotRunner(autopilot):
                ingester = FleetIngester(fleet, N_INGESTS,
                                         donor="replica-2")
                with plan.active():
                    ingester.start()
                    for wave in range(N_WAVES):
                        wave_clients = [
                            StormClient(fleet.router_port, source, offset)
                            for source, offset
                            in zip(range(N_CLIENTS), offsets)
                        ]
                        clients.extend(wave_clients)
                        for client in wave_clients:
                            client.start()
                        if wave == 0:
                            # Kill mid-burst: in-flight requests die on
                            # the wire; nobody but the autopilot may
                            # bring the replica back.
                            time.sleep(0.08)
                            fleet.kill_replica("replica-0")
                        time.sleep(0.8)
                    for client in clients:
                        client.join(timeout=30)
                    ingester.join(timeout=30)

                # Hands off: poll (reads only) until the loop has both
                # healed the kill and grown the fleet, and every
                # replica sits at the fleet tip.
                deadline = time.monotonic() + CONVERGE_TIMEOUT
                while time.monotonic() < deadline:
                    if converged(fleet, autopilot):
                        break
                    time.sleep(0.2)
                assert converged(fleet, autopilot), (
                    autopilot.counters,
                    [d.to_dict() for d in list(autopilot.decisions)[-8:]],
                )

            # -- conservation ---------------------------------------------
            assert not any(c.is_alive() for c in clients)
            assert not ingester.is_alive()
            assert [c for c in clients if c.error] == []
            assert ingester.error is None
            answered = [c for c in clients if c.response is not None]
            shed = [c for c in clients if c.shed is not None]
            assert len(answered) + len(shed) == N_WAVES * N_CLIENTS
            assert answered and shed

            # -- hysteresis bound -----------------------------------------
            # Healing is repair, not scaling; the membership changes are
            # the grows, one per cooldown window across a ~3s storm.
            assert autopilot.counters["heals"] >= 1
            assert 1 <= autopilot.counters["grows"] <= 3
            assert autopilot.counters["shrinks"] == 0
            assert autopilot.counters["membership_changes"] <= 3
            grown = sorted(fleet.replicas)
            assert len(grown) >= 4
            assert "replica-0" in grown  # healed, not replaced

            # -- receipts stay strictly consecutive -----------------------
            versions = [r["version"] for r in ingester.receipts]
            assert len(versions) == N_INGESTS
            assert versions == list(range(versions[0],
                                          versions[0] + N_INGESTS))
            status = fleet.fleet_status()["fleet"]
            assert status["fleet_version"] == versions[-1]

            # -- bit-identical answers on every replica -------------------
            reference_store = SnapshotStore(
                fleet.replicas["replica-2"].store_dir
            )
            last = reference_store.num_snapshots - 1
            for algorithm, source in (("SSSP", 0), ("BFS", 3)):
                expected = offline_values(
                    reference_store, fleet_weights, algorithm, source,
                    0, last,
                )
                for name in fleet.replicas:
                    with fleet.replica_client(name) as probe:
                        live = probe.query(algorithm, source)
                    assert_values_equal(live["values"], expected)

            # -- the loop's own story is on the record --------------------
            decisions = [d.to_dict() for d in autopilot.decisions]
            assert any(d["action"] and d["action"]["verb"] == "heal"
                       and d["outcome"] and d["outcome"]["ok"]
                       for d in decisions)
            assert any(d["action"] and d["action"]["verb"] == "grow"
                       and d["outcome"] and d["outcome"]["ok"]
                       for d in decisions)
            payload = fleet.fleet_status()["autopilot"]
            assert payload["counters"]["grows"] == \
                autopilot.counters["grows"]

            export = obs_runtime.registry.render_prometheus()
            assert "repro_autopilot_cycles_total" in export
            assert 'repro_autopilot_actions_total{verb="heal",outcome="ok"}' \
                in export
            assert 'repro_autopilot_actions_total{verb="grow",outcome="ok"}' \
                in export
            changes = [
                line for line in export.splitlines()
                if line.startswith("repro_autopilot_membership_changes_total")
            ]
            assert changes
            assert 1 <= float(changes[0].rsplit(" ", 1)[1]) <= 3
