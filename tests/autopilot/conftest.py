"""Fixtures for the autopilot tests: reuse the fleet suite's fleet."""

from __future__ import annotations

import pytest

from repro import obs
from repro.testing import reset_observability

# Re-exported so the autopilot tests get the same seeded fleet graph,
# base store and weights the fleet suite runs on.
from tests.fleet.conftest import (  # noqa: F401
    base_store,
    fleet,
    fleet_evolving,
    fleet_weights,
)


@pytest.fixture
def obs_runtime(tmp_path):
    runtime = obs.configure(sample_rate=1.0,
                            span_sink=tmp_path / "spans.jsonl")
    yield runtime
    reset_observability()
