"""The control loop against a live fleet: observe → diagnose → act.

The hysteresis math is pinned in ``test_policy.py`` with a FakeClock;
these tests exercise the other half — the scraper reading the real
router and replica status documents, and the executor driving real
membership changes (grow clones a donor store, shrink drains, heal
recovers a killed process) through the supervisor.

Where a test needs overload pressure it injects it at the one seam
built for it: wrapping ``scraper.scrape`` to raise the router's
``shed`` counter.  Everything downstream of the counters — policy,
executor, supervisor, router — runs for real.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import faults
from repro.autopilot import (
    Action,
    ActionExecutor,
    AutopilotConfig,
    FleetAutopilot,
    decision_log,
)

pytestmark = [pytest.mark.service, pytest.mark.fleet, pytest.mark.autopilot]


def rotation(supervisor):
    return supervisor.fleet_status()["fleet"]["rotation"]


def autopilot_config(**overrides):
    defaults = dict(
        min_replicas=2, max_replicas=5, ewma_alpha=1.0,
        scale_up_pressure=0.25, scale_down_pressure=0.05,
        calm_cycles=99, grow_cooldown_s=0.0, shrink_cooldown_s=0.0,
        heal_cooldown_s=0.0,
    )
    defaults.update(overrides)
    # Zero cooldowns and an unreachable calm streak suit single-shot
    # once() tests; the shrink test opts back into calm_cycles=1.
    return AutopilotConfig(**defaults)


class TestDryRun:
    def test_dry_run_reports_the_action_without_mutating(self, fleet):
        config = autopilot_config()
        with FleetAutopilot(fleet, config) as autopilot:
            autopilot.once(dry_run=True)  # baseline seeds the deltas
            _inflate_shed(autopilot, 50)
            decision = autopilot.once(dry_run=True)
            assert decision.dry_run is True
            assert decision.condition == "underprovisioned"
            assert decision.action is not None
            assert decision.action["verb"] == "grow"
            assert decision.outcome == {"dry_run": True}
            # Nothing moved and nothing was published.
            assert sorted(fleet.replicas) == [
                "replica-0", "replica-1", "replica-2",
            ]
            status = fleet.fleet_status()
            assert status["fleet"]["rotation"] == [
                "replica-0", "replica-1", "replica-2",
            ]
            assert status["autopilot"] is None
            assert autopilot.counters["membership_changes"] == 0


class TestHeal:
    def test_loop_recovers_a_killed_replica(self, fleet):
        fleet.kill_replica("replica-1")
        with FleetAutopilot(fleet, autopilot_config()) as autopilot:
            decision = autopilot.once()
            assert decision.condition == "unhealthy-replica"
            assert decision.action["verb"] == "heal"
            assert decision.action["target"] == "replica-1"
            assert decision.outcome["ok"] is True
            assert decision.outcome["healed"] == "recover"
            assert rotation(fleet) == [
                "replica-0", "replica-1", "replica-2",
            ]
            # Healing repairs; it is not a membership change.
            assert autopilot.counters["membership_changes"] == 0
            assert autopilot.counters["heals"] == 1

    def test_router_scrape_failure_holds_every_action(self, fleet):
        plan = faults.FaultPlan(seed=1)
        plan.fail_autopilot(match="scrape:router")
        with FleetAutopilot(fleet, autopilot_config()) as autopilot:
            with plan.active():
                decision = autopilot.once()
            assert decision.condition == "unknown"
            assert decision.held == "scrape-failed"
            assert decision.action is None
            assert autopilot.counters["scrape_errors"] == 1
            # The next cycle scrapes clean and proceeds normally.
            decision = autopilot.once()
            assert decision.condition == "steady"

    def test_replica_scrape_failure_degrades_to_partial_data(self, fleet):
        plan = faults.FaultPlan(seed=1)
        plan.fail_autopilot(match="scrape:replica-1")
        with FleetAutopilot(fleet, autopilot_config()) as autopilot:
            with plan.active():
                decision = autopilot.once()
            assert decision.condition == "steady"
            errors = decision.signals["scrape_errors"]
            assert len(errors) == 1
            assert errors[0].startswith("replica-1:")


class TestGrow:
    def test_sustained_pressure_grows_the_fleet(self, fleet):
        with FleetAutopilot(fleet, autopilot_config()) as autopilot:
            autopilot.once()  # baseline
            _inflate_shed(autopilot, 50)
            decision = autopilot.once()
            assert decision.condition == "underprovisioned"
            assert decision.outcome["ok"] is True
            assert decision.outcome["replica"] == "replica-3"
            assert autopilot.counters["membership_changes"] == 1
        assert sorted(fleet.replicas) == [
            "replica-0", "replica-1", "replica-2", "replica-3",
        ]
        assert rotation(fleet) == [
            "replica-0", "replica-1", "replica-2", "replica-3",
        ]
        # The provisioned replica answers bit-identically to the donor.
        with fleet.replica_client("replica-3") as grown:
            with fleet.replica_client("replica-0") as donor:
                for source in (0, 3):
                    got = grown.query("SSSP", source)["values"]
                    want = donor.query("SSSP", source)["values"]
                    for a, b in zip(got, want):
                        assert np.array_equal(a, b)

    def test_action_failure_is_neutral(self, fleet):
        plan = faults.FaultPlan(seed=1)
        plan.fail_autopilot(match="action:grow:*")
        config = autopilot_config(grow_cooldown_s=120.0)
        with FleetAutopilot(fleet, config) as autopilot:
            autopilot.once()
            _inflate_shed(autopilot, 50)
            with plan.active():
                decision = autopilot.once()
            assert decision.action["verb"] == "grow"
            assert decision.outcome["ok"] is False
            assert autopilot.counters["action_failures"] == 1
            assert autopilot.policy.in_flight is None
            # Membership rolled back to exactly where it started ...
            assert sorted(fleet.replicas) == [
                "replica-0", "replica-1", "replica-2",
            ]
            assert rotation(fleet) == [
                "replica-0", "replica-1", "replica-2",
            ]
            # ... and the verb cools down instead of retrying hot.
            decision = autopilot.once()
            assert decision.condition == "underprovisioned"
            assert decision.action is None
            assert decision.held == "cooldown:grow"


class TestShrink:
    def test_idle_fleet_shrinks_to_min_and_stops(self, fleet):
        with FleetAutopilot(fleet,
                            autopilot_config(calm_cycles=1)) as autopilot:
            decision = autopilot.once()
            assert decision.condition == "overprovisioned"
            assert decision.outcome["ok"] is True
            assert decision.outcome["replica"] == "replica-2"
            assert rotation(fleet) == ["replica-0", "replica-1"]
            # At min_replicas the next calm cycle holds, forever.
            decision = autopilot.once()
            assert decision.condition == "overprovisioned"
            assert decision.action is None
            assert decision.held == "at-min-replicas"
            assert autopilot.counters["membership_changes"] == 1


class TestExecutor:
    def test_unknown_verb_is_a_reported_failure(self, fleet):
        executor = ActionExecutor(fleet)
        outcome = executor.apply(Action("explode"))
        assert outcome["ok"] is False
        assert "explode" in outcome["error"]


class TestReporting:
    def test_live_cycle_publishes_into_router_status(self, fleet):
        with FleetAutopilot(fleet, autopilot_config()) as autopilot:
            autopilot.once()
            payload = fleet.fleet_status()["autopilot"]
        assert payload is not None
        assert payload["counters"]["cycles"] == 1
        assert payload["last_decision"]["condition"] == "steady"
        assert payload["config"]["min_replicas"] == 2

    def test_decisions_are_json_serialisable_and_logged(self, fleet):
        with FleetAutopilot(fleet, autopilot_config()) as autopilot:
            decision = autopilot.once(dry_run=True)
            replayed = json.loads(json.dumps(decision.to_dict()))
            assert replayed["condition"] == decision.condition
            assert replayed["signals"]["fleet_version"] == 4
            assert replayed["pressure"]["smoothed"] == 0.0
            log = decision_log()
            assert len(log) == 1
            assert log[0] == decision.to_dict()

    def test_autopilot_metrics_are_exported(self, fleet, obs_runtime):
        with FleetAutopilot(fleet, autopilot_config()) as autopilot:
            autopilot.once()
            export = obs_runtime.registry.render_prometheus()
        assert "repro_autopilot_cycles_total 1" in export
        assert 'repro_autopilot_decisions_total{condition="steady"} 1' \
            in export
        assert "repro_autopilot_pressure 0" in export
        assert 'repro_autopilot_replicas{state="ready"} 3' in export


def _inflate_shed(autopilot, extra_shed):
    """Make every later scrape look like the router shed more queries.

    The counters are the seam the policy actually consumes; inflating
    them exercises scrape → observe → decide → act end-to-end without
    needing a real storm (the chaos test runs one).
    """
    real_scrape = autopilot.scraper.scrape
    calls = {"scrapes": 0}

    def scrape():
        calls["scrapes"] += 1
        signals = real_scrape()
        fields = signals.to_dict()
        # Cumulative, like the real counter: the policy acts on deltas,
        # so the storm must keep shedding to keep pressure up.
        fields["shed"] = signals.shed + extra_shed * calls["scrapes"]
        fields["scrape_errors"] = tuple(fields["scrape_errors"])
        return type(signals)(**fields)

    autopilot.scraper.scrape = scrape
