"""Hysteresis unit tests: the policy under a FakeClock, no fleet.

Every decision layer is pinned with synthetic signal sequences:
EWMA smoothing, the asymmetric up/down thresholds with their calm-cycle
requirement, per-verb cooldowns, the min/max bounds, and the
one-action-in-flight rule.  The flapping test is the hysteresis
contract itself: a signal that oscillates across both thresholds every
cycle may still change membership at most once per cooldown window.
"""

from __future__ import annotations

import pytest

from repro.autopilot import (
    Action,
    AutopilotConfig,
    AutopilotPolicy,
    Ewma,
    FleetSignals,
)
from repro.errors import FleetError
from repro.obs.clock import FakeClock

pytestmark = [pytest.mark.autopilot]


def signals(states=None, answered=0, shed=0, queue_depth=0, at=0.0,
            reasons=None):
    return FleetSignals(
        at=at,
        states=dict(states or {"replica-0": "ready", "replica-1": "ready",
                               "replica-2": "ready"}),
        reasons=dict(reasons or {}),
        answered=answered,
        shed=shed,
        queue_depth=queue_depth,
    )


def make_policy(clock, **overrides):
    defaults = dict(
        min_replicas=2, max_replicas=5, ewma_alpha=1.0,
        scale_up_pressure=0.25, scale_down_pressure=0.05,
        calm_cycles=2, grow_cooldown_s=2.0, shrink_cooldown_s=10.0,
        heal_cooldown_s=1.0, queue_pressure_depth=8,
    )
    defaults.update(overrides)
    return AutopilotPolicy(AutopilotConfig(**defaults), clock=clock)


class TestEwma:
    def test_first_sample_seeds_the_average(self):
        ewma = Ewma(0.5)
        assert ewma.update(0.8) == pytest.approx(0.8)

    def test_smoothing_converges_geometrically(self):
        ewma = Ewma(0.5)
        ewma.update(0.0)
        assert ewma.update(1.0) == pytest.approx(0.5)
        assert ewma.update(1.0) == pytest.approx(0.75)
        assert ewma.update(1.0) == pytest.approx(0.875)

    def test_alpha_one_tracks_the_raw_signal(self):
        ewma = Ewma(1.0)
        ewma.update(0.2)
        assert ewma.update(0.9) == pytest.approx(0.9)

    def test_invalid_alpha_refused(self):
        with pytest.raises(FleetError):
            Ewma(0.0)
        with pytest.raises(FleetError):
            Ewma(1.5)


class TestConfigValidation:
    def test_bounds_must_nest(self):
        with pytest.raises(FleetError):
            AutopilotConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(FleetError):
            AutopilotConfig(min_replicas=0)

    def test_down_threshold_strictly_below_up(self):
        with pytest.raises(FleetError):
            AutopilotConfig(scale_up_pressure=0.2,
                            scale_down_pressure=0.2)

    def test_calm_cycles_positive(self):
        with pytest.raises(FleetError):
            AutopilotConfig(calm_cycles=0)


class TestPressure:
    def test_first_scrape_has_no_deltas(self):
        policy = make_policy(FakeClock(0.0))
        reading = policy.observe(signals(answered=100, shed=900))
        # Counter history from before the loop started must not count.
        assert reading.raw == 0.0

    def test_shed_fraction_of_new_traffic(self):
        policy = make_policy(FakeClock(0.0))
        policy.observe(signals(answered=10, shed=0))
        reading = policy.observe(signals(answered=13, shed=1))
        assert reading.shed_delta == 1
        assert reading.answered_delta == 3
        assert reading.raw == pytest.approx(0.25)

    def test_queue_depth_saturates_pressure(self):
        policy = make_policy(FakeClock(0.0), queue_pressure_depth=4)
        reading = policy.observe(signals(queue_depth=2))
        assert reading.raw == pytest.approx(0.5)
        reading = policy.observe(signals(queue_depth=100))
        assert reading.raw == 1.0

    def test_ewma_smooths_one_bad_scrape(self):
        policy = make_policy(FakeClock(0.0), ewma_alpha=0.25)
        policy.observe(signals(answered=10, shed=0))
        reading = policy.observe(signals(answered=10, shed=10))
        # Raw pressure spiked to 1.0 but the smoothed signal did not.
        assert reading.raw == 1.0
        assert reading.smoothed == pytest.approx(0.25)


class TestThresholds:
    def test_high_pressure_grows(self):
        policy = make_policy(FakeClock(0.0))
        policy.observe(signals())
        reading = policy.observe(signals(shed=10))
        condition, _rule, action, held = policy.decide(signals(shed=10),
                                                       reading)
        assert condition == "underprovisioned"
        assert action is not None and action.verb == "grow"
        assert held is None

    def test_dead_band_is_steady(self):
        policy = make_policy(FakeClock(0.0))
        policy.observe(signals())
        reading = policy.observe(signals(answered=10, shed=1))
        # 1/11 ≈ 0.09: above the down threshold, below the up one.
        condition, _rule, action, held = policy.decide(
            signals(answered=10, shed=1), reading
        )
        assert condition == "steady"
        assert action is None and held is None

    def test_shrink_requires_consecutive_calm_cycles(self):
        policy = make_policy(FakeClock(0.0), calm_cycles=3)
        quiet = signals()
        readings = [policy.observe(quiet) for _ in range(3)]
        # Cycles 1 and 2 are calm but not calm for long enough.
        for reading in readings[:2]:
            condition, _rule, action, _held = policy.decide(quiet, reading)
            assert condition == "steady"
            assert action is None
        condition, _rule, action, held = policy.decide(quiet, readings[2])
        assert condition == "overprovisioned"
        assert action is not None and action.verb == "shrink"
        assert held is None

    def test_pressure_spike_resets_the_calm_streak(self):
        policy = make_policy(FakeClock(0.0), calm_cycles=2)
        assert policy.observe(signals()).calm_streak == 1
        assert policy.observe(signals()).calm_streak == 2
        spike = policy.observe(signals(shed=10))
        assert spike.calm_streak == 0
        # One calm cycle after the spike starts the count over.
        assert policy.observe(signals(shed=10)).calm_streak == 1


class TestBounds:
    def test_grow_clamped_at_max_replicas(self):
        policy = make_policy(FakeClock(0.0), max_replicas=3)
        crowd = signals(shed=50)
        policy.observe(signals())
        reading = policy.observe(crowd)
        condition, _rule, action, held = policy.decide(crowd, reading)
        assert condition == "underprovisioned"
        assert action is None
        assert held == "at-max-replicas"

    def test_shrink_clamped_at_min_replicas(self):
        policy = make_policy(FakeClock(0.0), min_replicas=3, calm_cycles=1)
        quiet = signals()
        reading = policy.observe(quiet)
        condition, _rule, action, held = policy.decide(quiet, reading)
        assert condition == "overprovisioned"
        assert action is None
        assert held == "at-min-replicas"


class TestCooldowns:
    def test_cooldown_holds_the_verb_until_it_expires(self):
        clock = FakeClock(100.0)
        policy = make_policy(clock, grow_cooldown_s=2.0)
        policy.observe(signals())
        reading = policy.observe(signals(shed=50))
        _c, _r, action, _h = policy.decide(signals(shed=50), reading)
        policy.begin(action)
        policy.complete(action, ok=True)
        # The storm persists: the counters keep climbing.
        reading = policy.observe(signals(shed=100))
        _c, _r, action, held = policy.decide(signals(shed=100), reading)
        assert action is None
        assert held == "cooldown:grow"
        clock.advance(2.5)
        reading = policy.observe(signals(shed=150))
        _c, _r, action, held = policy.decide(signals(shed=150), reading)
        assert action is not None and action.verb == "grow"
        assert held is None

    def test_failed_action_is_neutral_and_still_cools_down(self):
        clock = FakeClock(0.0)
        policy = make_policy(clock, grow_cooldown_s=5.0)
        policy.observe(signals())
        reading = policy.observe(signals(shed=50))
        _c, _r, action, _h = policy.decide(signals(shed=50), reading)
        policy.begin(action)
        policy.complete(action, ok=False)  # the supervisor rolled back
        assert policy.in_flight is None
        reading = policy.observe(signals(shed=100))
        _c, _r, action, held = policy.decide(signals(shed=100), reading)
        # No hot retry: the failure starts the same cooldown a success
        # would, and the loop re-diagnoses once it lapses.
        assert action is None
        assert held == "cooldown:grow"

    def test_heal_is_not_gated_by_a_scale_cooldown(self):
        clock = FakeClock(0.0)
        policy = make_policy(clock, grow_cooldown_s=10.0,
                             heal_cooldown_s=1.0)
        policy.observe(signals())
        reading = policy.observe(signals(shed=50))
        _c, _r, action, _h = policy.decide(signals(shed=50), reading)
        policy.begin(action)
        policy.complete(action, ok=True)
        # Growing is cooling, but a casualty can still be healed.
        hurt = signals(states={"replica-0": "ready", "replica-1": "stopped",
                               "replica-2": "ready"}, shed=50)
        reading = policy.observe(hurt)
        condition, _rule, action, held = policy.decide(hurt, reading)
        assert condition == "unhealthy-replica"
        assert action is not None and action.verb == "heal"
        assert held is None

    def test_grow_and_shrink_share_the_membership_cooldown(self):
        clock = FakeClock(0.0)
        policy = make_policy(clock, calm_cycles=1, grow_cooldown_s=4.0,
                             shrink_cooldown_s=4.0)
        policy.observe(signals())
        reading = policy.observe(signals(shed=50))
        _c, _r, action, _h = policy.decide(signals(shed=50), reading)
        assert action.verb == "grow"
        policy.begin(action)
        policy.complete(action, ok=True)
        # The storm evaporates instantly; a shrink is indicated but the
        # fresh grow holds it — no grow/shrink ping-pong.
        quiet = signals(answered=100, shed=50)
        reading = policy.observe(quiet)
        condition, _rule, action, held = policy.decide(quiet, reading)
        assert condition == "overprovisioned"
        assert action is None
        assert held == "cooldown:grow"


class TestOneActionInFlight:
    def test_second_action_held_while_one_is_in_flight(self):
        policy = make_policy(FakeClock(0.0))
        policy.observe(signals())
        reading = policy.observe(signals(shed=50))
        _c, _r, action, _h = policy.decide(signals(shed=50), reading)
        policy.begin(action)
        reading = policy.observe(signals(shed=100))
        _c, _r, second, held = policy.decide(signals(shed=100), reading)
        assert second is None
        assert held == "action-in-flight"

    def test_double_begin_refused(self):
        policy = make_policy(FakeClock(0.0))
        policy.begin(Action("grow"))
        with pytest.raises(FleetError):
            policy.begin(Action("heal", target="replica-0"))


class TestHealing:
    def test_stopped_replica_outranks_scaling(self):
        policy = make_policy(FakeClock(0.0))
        hurt = signals(states={"replica-0": "stopped",
                               "replica-1": "ready",
                               "replica-2": "ready"}, shed=50)
        policy.observe(signals())
        reading = policy.observe(hurt)
        condition, rule, action, _held = policy.decide(hurt, reading)
        assert condition == "unhealthy-replica"
        assert action.verb == "heal" and action.target == "replica-0"
        assert "replica-0" in rule

    def test_divergence_diagnosed_and_preferred(self):
        policy = make_policy(FakeClock(0.0))
        hurt = signals(
            states={"replica-0": "stopped", "replica-1": "quarantined",
                    "replica-2": "ready"},
            reasons={"replica-1": "divergence"},
        )
        reading = policy.observe(hurt)
        condition, _rule, action, _held = policy.decide(hurt, reading)
        assert condition == "diverged"
        assert action.target == "replica-1"

    def test_provisioning_quarantine_is_not_a_casualty(self):
        # A grow in progress parks the new replica as quarantined
        # ("provisioning"); the policy must not try to heal its own
        # half-born replica.
        policy = make_policy(FakeClock(0.0))
        growing = signals(
            states={"replica-0": "ready", "replica-1": "ready",
                    "replica-3": "quarantined"},
            reasons={"replica-3": "provisioning"},
        )
        reading = policy.observe(growing)
        condition, _rule, action, _held = policy.decide(growing, reading)
        assert condition == "steady"
        assert action is None


class TestFlapping:
    def test_at_most_one_membership_change_per_cooldown_window(self):
        """The hysteresis contract under a worst-case oscillating signal.

        The signal alternates every cycle between full overload and
        full calm for 40 cycles at 10 cycles per cooldown window; the
        policy may change membership at most once per window.
        """
        clock = FakeClock(0.0)
        cooldown = 5.0
        policy = make_policy(
            clock, ewma_alpha=1.0, calm_cycles=1,
            grow_cooldown_s=cooldown, shrink_cooldown_s=cooldown,
        )
        replica_count = 3
        changes = []  # (time, verb)
        answered, shed = 0, 0
        for cycle in range(40):
            if cycle % 2 == 0:
                shed += 10  # storm half-cycle
            else:
                answered += 10  # calm half-cycle
            states = {f"replica-{i}": "ready" for i in range(replica_count)}
            snap = signals(states=states, answered=answered, shed=shed,
                           at=clock.now())
            reading = policy.observe(snap)
            _c, _r, action, _h = policy.decide(snap, reading)
            if action is not None and action.verb in ("grow", "shrink"):
                policy.begin(action)
                policy.complete(action, ok=True)
                replica_count += 1 if action.verb == "grow" else -1
                changes.append((clock.now(), action.verb))
            clock.advance(0.5)  # 10 cycles per cooldown window
        assert changes, "the storm half-cycles must trigger something"
        for first, second in zip(changes, changes[1:]):
            assert second[0] - first[0] >= cooldown
        assert 2 <= replica_count <= 5
