"""Tests for repro.analysis.metrics."""

import math

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.metrics import (
    METRICS,
    evaluate_metric,
    metric_names,
    vertex_value,
)
from repro.errors import ReproError


BFS = get_algorithm("BFS")
SSWP = get_algorithm("SSWP")


class TestBuiltinMetrics:
    def test_reach_min_direction(self):
        values = np.array([0.0, 1.0, np.inf, 2.0])
        assert evaluate_metric("reach", values, BFS) == 3.0

    def test_reach_max_direction_counts_source(self):
        # SSWP: worst = 0, source holds inf — it is reached.
        values = np.array([np.inf, 5.0, 0.0])
        assert evaluate_metric("reach", values, SSWP) == 2.0

    def test_mean_skips_unreached_and_infinite(self):
        values = np.array([0.0, 2.0, np.inf, 4.0])
        assert evaluate_metric("mean", values, BFS) == 2.0
        sswp_values = np.array([np.inf, 6.0, 2.0, 0.0])
        assert evaluate_metric("mean", sswp_values, SSWP) == 4.0

    def test_extreme_is_worst_reached(self):
        values = np.array([0.0, 1.0, 7.0, np.inf])
        assert evaluate_metric("extreme", values, BFS) == 7.0
        sswp_values = np.array([np.inf, 6.0, 2.0, 0.0])
        assert evaluate_metric("extreme", sswp_values, SSWP) == 2.0

    def test_best_is_best_reached(self):
        values = np.array([np.inf, 3.0, 7.0])
        assert evaluate_metric("best", values, BFS) == 3.0

    def test_empty_reach_gives_nan(self):
        values = np.array([np.inf, np.inf])
        assert math.isnan(evaluate_metric("mean", values, BFS))
        assert math.isnan(evaluate_metric("extreme", values, BFS))
        assert evaluate_metric("reach", values, BFS) == 0.0

    def test_vertex_value_metric(self):
        metric = vertex_value(2)
        values = np.array([0.0, 1.0, 9.0])
        assert evaluate_metric(metric, values, BFS) == 9.0
        assert metric.__name__ == "vertex_2"

    def test_registry_names(self):
        assert set(metric_names()) == set(METRICS) == {
            "reach", "mean", "extreme", "best",
        }

    def test_unknown_metric(self):
        with pytest.raises(ReproError, match="unknown metric"):
            evaluate_metric("entropy", np.array([0.0]), BFS)
