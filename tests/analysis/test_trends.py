"""Tests for repro.analysis.trends."""

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.metrics import vertex_value
from repro.analysis.trends import TrendReport, TrendTracker, detect_changes
from repro.errors import ReproError
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute

WF = HashWeights(max_weight=8, seed=7)


class TestTrendTracker:
    def test_series_shapes(self, small_evolving):
        tracker = TrendTracker(
            small_evolving, get_algorithm("BFS"), source=3, weight_fn=WF
        )
        report = tracker.track()
        assert set(report.series) == {"reach", "mean", "extreme"}
        assert report.num_snapshots == small_evolving.num_snapshots
        assert report.snapshots()[0] == 0

    def test_values_match_direct_evaluation(self, small_evolving):
        tracker = TrendTracker(
            small_evolving, get_algorithm("BFS"), source=3, weight_fn=WF
        )
        report = tracker.track(metrics=("reach",))
        for i in range(small_evolving.num_snapshots):
            values = static_compute(
                small_evolving.snapshot_csr(i, weight_fn=WF),
                get_algorithm("BFS"), 3,
            ).values
            assert report.series["reach"][i] == float(np.isfinite(values).sum())

    def test_window_tracking(self, small_evolving):
        tracker = TrendTracker(
            small_evolving, get_algorithm("SSSP"), source=3, weight_fn=WF
        )
        report = tracker.track(metrics=("reach",), first=2, last=5)
        assert report.num_snapshots == 4
        assert report.snapshots() == [2, 3, 4, 5]

    def test_custom_metric_and_strategies_agree(self, small_evolving):
        metric = vertex_value(10)
        a = TrendTracker(
            small_evolving, get_algorithm("SSSP"), 3, weight_fn=WF,
            strategy="direct-hop",
        ).track(metrics=(metric,))
        b = TrendTracker(
            small_evolving, get_algorithm("SSSP"), 3, weight_fn=WF,
            strategy="work-sharing",
        ).track(metrics=(metric,))
        assert a.series["vertex_10"] == b.series["vertex_10"]

    def test_unknown_strategy(self, small_evolving):
        with pytest.raises(ReproError):
            TrendTracker(
                small_evolving, get_algorithm("BFS"), 3, strategy="psychic"
            )

    def test_render_and_chart(self, small_evolving):
        tracker = TrendTracker(
            small_evolving, get_algorithm("BFS"), source=3, weight_fn=WF
        )
        report = tracker.track(metrics=("reach", "mean"))
        text = report.render(title="demo")
        assert "demo" in text
        assert "reach" in text
        chart = report.chart(names=("reach",), width=20, height=5)
        assert "* reach" in chart


class TestDetectChanges:
    def test_flat_series_no_changes(self):
        assert detect_changes([5.0] * 10) == []

    def test_single_jump_detected(self):
        series = [10.0, 10.1, 10.0, 10.2, 25.0, 25.1, 25.0, 24.9]
        assert detect_changes(series) == [4]

    def test_short_series_ignored(self):
        assert detect_changes([1.0, 99.0, 1.0]) == []

    def test_linear_trend_no_changes(self):
        assert detect_changes([float(i) for i in range(10)]) == []

    def test_two_jumps(self):
        series = [0.0, 0.0, 0.1, 0.0, 8.0, 8.1, 8.0, 8.1, -5.0, -5.1, -5.0]
        flagged = detect_changes(series)
        assert 4 in flagged
        assert 8 in flagged


class TestTrendReport:
    def test_empty_report(self):
        report = TrendReport(first_snapshot=0)
        assert report.num_snapshots == 0
        assert report.snapshots() == []
