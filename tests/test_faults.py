"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.faults import (
    FaultPlan,
    InjectedFault,
    corrupt_bytes,
    io_check,
    task_check,
)

pytestmark = pytest.mark.faults


class TestInactive:
    def test_io_check_is_noop(self):
        assert io_check("write", "anything") is True

    def test_task_check_is_noop(self):
        task_check("hop", 3)  # no raise


class TestIOFaults:
    def test_fail_nth_operation(self):
        plan = FaultPlan().fail_io(index=1)
        with plan.active():
            assert io_check("write", "a") is True
            with pytest.raises(InjectedFault, match="write:b"):
                io_check("write", "b")
            assert io_check("write", "c") is True
        assert plan.events == ["write:a", "write:b", "write:c"]

    def test_match_pattern_counts_only_matching_ops(self):
        plan = FaultPlan().fail_io(index=1, match="fsync:*")
        with plan.active():
            io_check("write", "a")
            io_check("fsync", "a")      # fsync ordinal 0: passes
            io_check("write", "b")
            with pytest.raises(InjectedFault):
                io_check("fsync", "b")  # fsync ordinal 1: fires

    def test_times_window(self):
        plan = FaultPlan().fail_io(index=0, times=2)
        with plan.active():
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    io_check("write", "x")
            assert io_check("write", "x") is True

    def test_skip_returns_false(self):
        plan = FaultPlan().skip_io(match="fsync:*", times=3)
        with plan.active():
            assert io_check("fsync", "f") is False
            assert io_check("write", "f") is True

    def test_injected_fault_is_oserror(self):
        assert issubclass(InjectedFault, OSError)


class TestTaskFaults:
    def test_fail_specific_task(self):
        plan = FaultPlan().fail_task(match="hop:2")
        with plan.active():
            task_check("hop", 0)
            task_check("hop", 1)
            with pytest.raises(InjectedFault, match="hop:2"):
                task_check("hop", 2)
            task_check("hop", 2)  # only the first occurrence fires


class TestReplay:
    def test_reset_replays_identically(self):
        plan = FaultPlan().fail_io(index=2)

        def drive():
            outcomes = []
            for name in "abcd":
                try:
                    io_check("write", name)
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("fault")
            return outcomes, list(plan.events)

        with plan.active():
            first = drive()
        plan.reset()
        with plan.active():
            second = drive()
        assert first == second
        assert first[0] == ["ok", "ok", "fault", "ok"]

    def test_fired_rules(self):
        plan = FaultPlan().fail_io(index=0).fail_io(index=99)
        with plan.active():
            with pytest.raises(InjectedFault):
                io_check("write", "x")
        assert len(plan.fired_rules()) == 1

    def test_nested_activation_restores_previous(self):
        outer = FaultPlan().fail_io(index=0, times=99)
        inner = FaultPlan()  # no rules
        with outer.active():
            with inner.active():
                assert io_check("write", "x") is True
            with pytest.raises(InjectedFault):
                io_check("write", "x")
        assert io_check("write", "x") is True


class TestCorruptBytes:
    def test_deterministic_and_mutating(self, tmp_path):
        path = tmp_path / "data.bin"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        mutations = corrupt_bytes(path, seed=5)
        assert len(mutations) == 1
        offset, old, new = mutations[0]
        assert old != new
        corrupted = path.read_bytes()
        assert corrupted != original
        assert corrupted[offset] == new
        # Same seed, same mutation.
        path.write_bytes(original)
        assert corrupt_bytes(path, seed=5) == mutations

    def test_plan_seed_drives_corruption(self, tmp_path):
        path = tmp_path / "data.bin"
        path.write_bytes(b"0123456789")
        a = FaultPlan(seed=11).corrupt(path)
        path.write_bytes(b"0123456789")
        b = FaultPlan(seed=11).corrupt(path)
        assert a == b

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_bytes(path)
