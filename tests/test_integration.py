"""Cross-system integration tests.

The load-bearing guarantee of the whole package: for any evolving graph
and any monotonic algorithm, all four evaluation strategies —
KickStarter streaming, Direct-Hop, Work-Sharing, and parallel
Direct-Hop — produce byte-identical per-snapshot results, and the work
asymmetries the paper exploits actually show up in the counters.
"""

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.workloads import WorkloadSpec, build_workload
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.core.parallel import ParallelDirectHop
from repro.core.triangular_grid import TriangularGrid
from repro.evolving.version_control import VersionController
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from repro.kickstarter.streaming import StreamingSession
from tests.conftest import ALL_ALGORITHMS, assert_values_equal

WF = HashWeights(max_weight=8, seed=7)


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadSpec(dataset="LJ", num_snapshots=8, batch_size=50,
                     edge_scale=0.2, seed=4),
        weight_fn=WF,
    )


@pytest.fixture(scope="module")
def decomposition(workload):
    return CommonGraphDecomposition.from_evolving(workload.evolving)


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_all_strategies_agree(workload, decomposition, name):
    alg = get_algorithm(name)
    src = workload.source
    ks = StreamingSession(workload.evolving, alg, src, weight_fn=WF).run()
    dh = DirectHopEvaluator(decomposition, alg, src, weight_fn=WF).run()
    ws = WorkSharingEvaluator(decomposition, alg, src, weight_fn=WF).run()
    par = ParallelDirectHop(decomposition, alg, src, weight_fn=WF).run(use_pool=False)
    for i in range(workload.evolving.num_snapshots):
        scratch = static_compute(
            workload.evolving.snapshot_csr(i, weight_fn=WF), alg, src
        ).values
        assert_values_equal(ks.snapshot_values[i], scratch, f"KS/{name}@{i}")
        assert_values_equal(dh.snapshot_values[i], scratch, f"DH/{name}@{i}")
        assert_values_equal(ws.snapshot_values[i], scratch, f"WS/{name}@{i}")
        assert_values_equal(par.snapshot_values[i], scratch, f"PAR/{name}@{i}")


def test_work_sharing_processes_fewer_additions(workload, decomposition):
    """The Steiner schedule shares work: fewer streamed additions."""
    alg = get_algorithm("BFS")
    dh = DirectHopEvaluator(decomposition, alg, workload.source, weight_fn=WF).run(
        keep_values=False
    )
    ws = WorkSharingEvaluator(decomposition, alg, workload.source, weight_fn=WF).run(
        keep_values=False
    )
    assert ws.additions_processed < dh.additions_processed
    grid = TriangularGrid(decomposition)
    assert dh.additions_processed == decomposition.total_direct_hop_additions()
    assert ws.additions_processed <= grid.decomposition.total_direct_hop_additions()


def test_commongraph_does_no_deletion_work(workload, decomposition):
    """Direct-Hop and Work-Sharing never trim a vertex."""
    alg = get_algorithm("SSSP")
    dh = DirectHopEvaluator(decomposition, alg, workload.source, weight_fn=WF).run(
        keep_values=False
    )
    ws = WorkSharingEvaluator(decomposition, alg, workload.source, weight_fn=WF).run(
        keep_values=False
    )
    ks = StreamingSession(
        workload.evolving, alg, workload.source, weight_fn=WF, keep_values=False
    ).run()
    assert dh.counters.vertices_trimmed == 0
    assert ws.counters.vertices_trimmed == 0
    assert ks.counters.vertices_trimmed > 0


def test_version_controller_agrees_with_evaluators(workload, decomposition):
    """Querying a version via the Table 1 API matches the evaluators."""
    vc = VersionController(workload.evolving, weight_fn=WF)
    alg = get_algorithm("SSWP")
    i = workload.evolving.num_snapshots - 1
    overlay = vc.get_version(i)
    got = static_compute(overlay, alg, workload.source).values
    want = static_compute(
        workload.evolving.snapshot_csr(i, weight_fn=WF), alg, workload.source
    ).values
    assert_values_equal(got, want)


def test_deletions_cost_more_than_additions(workload):
    """Figure 1's premise, asserted on work counters (timing-free)."""
    from repro.evolving.generator import UpdateStreamGenerator
    from repro.graph.mutable import MutableGraph
    from repro.kickstarter.deletion import trim_and_repair
    from repro.kickstarter.engine import EngineCounters, incremental_additions

    alg = get_algorithm("SSSP")
    base = workload.evolving.snapshot_edges(0)
    n = workload.num_vertices
    batch = 150

    add_counters = EngineCounters()
    gen = UpdateStreamGenerator(n, base, batch, add_fraction=1.0, seed=1,
                                protect_vertex=workload.source)
    additions = gen.next_batch().additions
    graph = MutableGraph.from_edge_set(base, n, weight_fn=WF)
    state = static_compute(graph, alg, workload.source, track_parents=True)
    graph.add_batch(additions)
    src, dst = additions.arrays()
    incremental_additions(graph, alg, state, src, dst, WF(src, dst),
                          counters=add_counters)

    del_counters = EngineCounters()
    gen = UpdateStreamGenerator(n, base, batch, add_fraction=0.0, seed=1,
                                protect_vertex=workload.source)
    deletions = gen.next_batch().deletions
    graph = MutableGraph.from_edge_set(base, n, weight_fn=WF)
    state = static_compute(graph, alg, workload.source, track_parents=True)
    graph.delete_batch(deletions)
    trim_and_repair(graph, alg, state, deletions, counters=del_counters)

    assert del_counters.edges_relaxed > add_counters.edges_relaxed


def test_snapshot_values_are_monotone_consistent(workload, decomposition):
    """Sanity: adding the surplus to Gc only improves values."""
    alg = get_algorithm("SSSP")
    dh = DirectHopEvaluator(decomposition, alg, workload.source, weight_fn=WF)
    base_values = dh.base_state().values
    result = dh.run()
    for values in result.snapshot_values:
        assert np.all(~alg.better(base_values, values))
