"""Tests for the public repro.testing utilities."""

import numpy as np
import pytest

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.registry import get_algorithm
from repro.graph.weights import HashWeights
from repro.testing import (
    assert_monotonic,
    assert_values_equal,
    reference_compute,
    reference_compute_edgeset,
)

WF = HashWeights(max_weight=8, seed=7)


class TestReferenceCompute:
    def test_simple_chain(self):
        values = reference_compute(
            [(0, 1, 2.0), (1, 2, 3.0)], 3, get_algorithm("SSSP"), 0
        )
        assert values.tolist() == [0.0, 2.0, 5.0]

    def test_edgeset_variant(self, diamond_edges):
        a = reference_compute_edgeset(diamond_edges, 6, get_algorithm("BFS"), 0, WF)
        src, dst = diamond_edges.arrays()
        b = reference_compute(
            zip(src.tolist(), dst.tolist(), WF(src, dst).tolist()),
            6, get_algorithm("BFS"), 0,
        )
        assert np.array_equal(a, b)

    def test_empty_edges(self, algorithm):
        values = reference_compute([], 3, algorithm, 1)
        assert values[1] == algorithm.source_value
        assert values[0] == algorithm.worst


class TestAssertValuesEqual:
    def test_passes_on_equal(self):
        assert_values_equal(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_fails_with_location(self):
        with pytest.raises(AssertionError, match=r"ctx: values differ at \[1\]"):
            assert_values_equal(np.array([1.0, 2.0]), np.array([1.0, 3.0]), "ctx")


class TestAssertMonotonic:
    def test_all_builtins_pass(self, algorithm):
        assert_monotonic(algorithm)

    def test_catches_violation(self):
        class Broken(MonotonicAlgorithm):
            name = "Broken"
            direction = "min"
            worst = np.inf
            source_value = 0.0

            def proposals(self, src_values, weights):
                # Non-monotone: larger inputs give *smaller* proposals.
                return weights - src_values

        with pytest.raises(AssertionError, match="not monotonic"):
            assert_monotonic(Broken())
