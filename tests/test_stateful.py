"""Model-based (stateful) tests.

Hypothesis drives long random operation sequences against a trivially
correct model:

* :class:`MutableGraphMachine` — in-place add/delete batches against a
  Python set-of-pairs model, checking the graph's edge set, degrees and
  gathers after every step;
* :class:`VersionControlMachine` — ``new_version``/``diff``/
  ``get_version`` against a list-of-sets model, checking that the
  common-graph decomposition stays consistent as history grows.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.evolving.snapshots import EvolvingGraph
from repro.evolving.version_control import VersionController
from repro.graph.edgeset import EdgeSet
from repro.graph.mutable import MutableGraph
from repro.graph.weights import HashWeights

N = 8  # vertex count: small so collisions/re-adds are frequent
ALL_PAIRS = [(u, v) for u in range(N) for v in range(N) if u != v]
WF = HashWeights(max_weight=5, seed=3)

pair_subsets = st.lists(
    st.sampled_from(ALL_PAIRS), min_size=0, max_size=6, unique=True
)


class MutableGraphMachine(RuleBasedStateMachine):
    """MutableGraph must behave exactly like a set of edges."""

    @initialize(pairs=pair_subsets)
    def setup(self, pairs):
        self.model = set(pairs)
        self.graph = MutableGraph.from_edge_set(
            EdgeSet.from_pairs(pairs), N, weight_fn=WF
        )

    @rule(pairs=pair_subsets)
    def add(self, pairs):
        fresh = [p for p in pairs if p not in self.model]
        self.graph.add_batch(EdgeSet.from_pairs(fresh))
        self.model.update(fresh)

    @rule(pairs=pair_subsets)
    def delete(self, pairs):
        present = [p for p in pairs if p in self.model]
        self.graph.delete_batch(EdgeSet.from_pairs(present))
        self.model.difference_update(present)

    @invariant()
    def edge_set_matches(self):
        assert set(self.graph.edge_set()) == self.model
        assert self.graph.num_edges == len(self.model)

    @invariant()
    def gather_matches(self):
        src, dst, w = self.graph.gather(np.arange(N))
        assert set(zip(src.tolist(), dst.tolist())) == self.model
        # Weights always come from the deterministic function.
        if src.size:
            assert np.array_equal(w, WF(src, dst))

    @invariant()
    def in_edges_match(self):
        origins, targets, _ = self.graph.gather_in(np.arange(N))
        assert set(zip(origins.tolist(), targets.tolist())) == self.model


class VersionControlMachine(RuleBasedStateMachine):
    """VersionController must track history like a list of edge sets."""

    @initialize(pairs=pair_subsets)
    def setup(self, pairs):
        base = EdgeSet.from_pairs(pairs)
        self.history = [set(pairs)]
        self.vc = VersionController(EvolvingGraph(N, base), weight_fn=WF)

    @rule(adds=pair_subsets, dels=pair_subsets)
    def new_version(self, adds, dels):
        current = self.history[-1]
        adds = [p for p in adds if p not in current]
        dels = [p for p in dels if p in current and p not in adds]
        index = self.vc.new_version(
            additions=EdgeSet.from_pairs(adds),
            deletions=EdgeSet.from_pairs(dels),
        )
        assert index == len(self.history)
        self.history.append((current | set(adds)) - set(dels))

    @rule(data=st.data())
    def diff_between_versions(self, data):
        a = data.draw(st.integers(0, len(self.history) - 1))
        b = data.draw(st.integers(0, len(self.history) - 1))
        diff = self.vc.diff(a, b)
        got = diff.apply(EdgeSet.from_pairs(sorted(self.history[a])))
        assert set(got) == self.history[b]

    @invariant()
    def versions_match_history(self):
        assert self.vc.num_versions == len(self.history)
        for index in (0, len(self.history) - 1):
            overlay = self.vc.get_version(index)
            assert set(overlay.edge_set()) == self.history[index]

    @invariant()
    def decomposition_is_consistent(self):
        decomp = self.vc.decomposition
        # Common graph is exactly the intersection of all versions.
        expected_common = set.intersection(*self.history)
        assert set(decomp.common) == expected_common
        for index, edges in enumerate(self.history):
            assert set(decomp.snapshot_edges(index)) == edges


TestMutableGraphStateful = MutableGraphMachine.TestCase
TestMutableGraphStateful.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)

TestVersionControlStateful = VersionControlMachine.TestCase
TestVersionControlStateful.settings = settings(
    max_examples=20, stateful_step_count=10, deadline=None
)
