"""Compactor unit tests: policy triggers, net-zero collapse, retry.

The compactor is exercised here against a plain callable append lane
(the retry loop needs injectable failures); the real store-backed fold
path is covered end-to-end in ``test_state_livetip.py``.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.errors import DeltaError, ServiceError
from repro.evolving.delta import DeltaBatch
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import HashWeights
from repro.livetip import CompactionPolicy, Compactor, LiveTipOverlay

pytestmark = pytest.mark.livetip

WF = HashWeights(max_weight=8, seed=7)
TIP = EdgeSet.from_pairs([(0, 1), (1, 2), (2, 3)])
N = 5


def make_pair(policy=None, time_fn=None, append=None):
    overlay = LiveTipOverlay(TIP, N, tip_version=0, weight_fn=WF,
                             time_fn=time_fn)
    appended: List[DeltaBatch] = []
    compactor = Compactor(
        overlay, append if append is not None else appended.append,
        policy=policy, time_fn=time_fn,
    )
    return overlay, compactor, appended


class TestPolicy:
    def test_max_updates_must_be_positive(self):
        with pytest.raises(ServiceError):
            CompactionPolicy(max_updates=0)

    def test_max_age_must_be_positive(self):
        with pytest.raises(ServiceError):
            CompactionPolicy(max_age_seconds=0.0)

    def test_clean_overlay_is_never_due(self):
        _, compactor, _ = make_pair()
        assert compactor.due() is False
        assert compactor.maybe_compact() is None

    def test_due_at_the_count_threshold(self):
        overlay, compactor, _ = make_pair(CompactionPolicy(max_updates=2))
        overlay.apply_update("insert", 3, 0)
        assert compactor.due() is False
        overlay.apply_update("insert", 3, 1)
        assert compactor.due() is True

    def test_age_threshold_uses_the_injected_clock(self):
        clock = [100.0]
        overlay, compactor, _ = make_pair(
            CompactionPolicy(max_updates=64, max_age_seconds=5.0),
            time_fn=lambda: clock[0],
        )
        overlay.apply_update("insert", 3, 0)
        assert compactor.due() is False
        clock[0] = 106.0
        assert compactor.due() is True

    def test_age_threshold_inert_without_a_clock(self):
        overlay, compactor, _ = make_pair(
            CompactionPolicy(max_updates=64, max_age_seconds=5.0),
        )
        overlay.apply_update("insert", 3, 0)
        assert compactor.due() is False


class TestFolding:
    def test_clean_compact_is_a_noop(self):
        _, compactor, appended = make_pair()
        receipt = compactor.compact()
        assert receipt["compacted"] is False
        assert receipt["updates_folded"] == 0
        assert appended == []

    def test_fold_appends_the_net_batch(self):
        overlay, compactor, appended = make_pair()
        overlay.apply_update("insert", 3, 0)
        overlay.apply_update("delete", 2, 3)
        receipt = compactor.compact()
        assert receipt["compacted"] is True
        assert receipt["updates_folded"] == 2
        assert len(appended) == 1
        assert sorted(appended[0].additions) == [(3, 0)]
        assert sorted(appended[0].deletions) == [(2, 3)]
        assert compactor.compactions == 1
        assert compactor.updates_folded == 2

    def test_net_zero_log_collapses_without_an_append(self):
        overlay, compactor, appended = make_pair()
        overlay.apply_update("insert", 3, 0)
        overlay.apply_update("delete", 3, 0)
        receipt = compactor.compact()
        assert receipt["compacted"] is True
        assert receipt["updates_folded"] == 2
        assert appended == []  # pure churn: no version, no epoch bump
        assert overlay.depth == 0

    def test_delta_error_triggers_a_reseal(self):
        overlay, _, _ = make_pair()
        overlay.apply_update("insert", 3, 0)
        failures = [DeltaError("tip moved"), DeltaError("tip moved")]
        appended: List[DeltaBatch] = []

        def flaky_append(batch: DeltaBatch) -> None:
            if failures:
                raise failures.pop()
            appended.append(batch)

        compactor = Compactor(overlay, flaky_append)
        receipt = compactor.compact()
        assert receipt["compacted"] is True
        assert len(appended) == 1

    def test_persistent_delta_error_raises_after_three_attempts(self):
        overlay, _, _ = make_pair()
        overlay.apply_update("insert", 3, 0)
        attempts = []

        def broken_append(batch: DeltaBatch) -> None:
            attempts.append(batch)
            raise DeltaError("tip keeps moving")

        compactor = Compactor(overlay, broken_append)
        with pytest.raises(DeltaError):
            compactor.compact()
        assert len(attempts) == 3
