"""Fixtures for the live-tip tests: a small store, a state, edge pools.

The graph matches the service suite's shape (64 vertices, 5 snapshots)
so numbers seen while debugging line up across suites.  Helpers derive
insert/delete candidates from the *live* edge set — the overlay's
strict validation (insert absent, delete present) makes hard-coded
pairs brittle.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.evolving.generator import generate_evolving_graph
from repro.evolving.store import SnapshotStore
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet, decode_edges
from repro.graph.generators import rmat_edges
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from repro.service import ServiceState


def edge_pairs_of(edges: EdgeSet) -> Set[Tuple[int, int]]:
    sources, targets = decode_edges(edges.codes)
    return set(zip(sources.tolist(), targets.tolist()))


def live_edge_set(state: ServiceState) -> EdgeSet:
    """The edge set tip queries answer from: overlay live edges when
    the overlay exists, the decomposition tip otherwise."""
    with state._lock:
        if state._livetip is not None:
            return state._livetip.live_edges()
        decomp = state.decomposition
        return decomp.snapshot_edges(decomp.num_snapshots - 1)


def absent_pairs(state: ServiceState, k: int) -> List[Tuple[int, int]]:
    """``k`` deterministic edges valid for ``insert`` right now."""
    present = edge_pairs_of(live_edge_set(state))
    n = state.decomposition.num_vertices
    picked: List[Tuple[int, int]] = []
    for u in range(n):
        for v in range(n):
            if u != v and (u, v) not in present:
                picked.append((u, v))
                if len(picked) == k:
                    return picked
    raise AssertionError(f"graph too dense to pick {k} absent edges")


def present_pairs(state: ServiceState, k: int) -> List[Tuple[int, int]]:
    """``k`` deterministic edges valid for ``delete`` right now."""
    picked = sorted(edge_pairs_of(live_edge_set(state)))[:k]
    assert len(picked) == k, f"tip too sparse to pick {k} present edges"
    return picked


def reference_tip_values(
    state: ServiceState, algorithm: str, source: int,
) -> np.ndarray:
    """From-scratch values on the materialized live tip (the oracle)."""
    edges = live_edge_set(state)
    graph = CSRGraph.from_edge_set(
        edges, state.decomposition.num_vertices, weight_fn=state.weight_fn,
    )
    return static_compute(
        graph, get_algorithm(algorithm), source, track_parents=True,
    ).values


@pytest.fixture(scope="session")
def livetip_evolving():
    return generate_evolving_graph(
        num_vertices=64,
        base=rmat_edges(scale=6, num_edges=240, seed=5),
        num_snapshots=5,
        batch_size=16,
        readd_fraction=0.5,
        seed=11,
        name="livetip",
    )


@pytest.fixture
def livetip_store(tmp_path, livetip_evolving):
    return SnapshotStore.create(tmp_path / "store", livetip_evolving)


@pytest.fixture
def livetip_weights():
    return HashWeights(max_weight=8, seed=7)


@pytest.fixture
def livetip_state(livetip_store, livetip_weights):
    state = ServiceState(livetip_store, weight_fn=livetip_weights)
    yield state
    state.close()
