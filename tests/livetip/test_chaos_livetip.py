"""Chaos: threshold compactions racing live queries.

The race under test: a single writer streams single-edge updates
through the state while threshold folds fire inline (every 4th
update appends a real TG column, bumps the epoch and rebases the
overlay) and a pack of reader threads hammers tip queries the whole
time.

The conservation law that makes this deterministic: **folds never
change the live edge set** — they only move the TG tip underneath the
overlay.  So the sequence of live edge sets is fully determined by
the update script alone, independent of fold/query timing, and every
answer's tip vector must be bit-identical to the from-scratch values
of *some* prefix of the script.  An answer matching no prefix means a
query observed a torn tip (TG column and overlay patch from different
instants) — exactly the bug the single-lock-hold capture prevents.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.kickstarter.engine import static_compute
from repro.service import ServiceState

from tests.livetip.conftest import edge_pairs_of, live_edge_set

pytestmark = [pytest.mark.livetip, pytest.mark.chaos]

N_UPDATES = 24
N_READERS = 4
FOLD_EVERY = 4
ALGORITHM = "SSSP"
SOURCE = 0


def build_script(state):
    """A valid update script plus per-prefix oracle values, precomputed.

    Simulated against a model edge set, so the script is valid by
    construction and the oracle needs no mid-race computation (which
    would race the very state it checks).
    """
    live = edge_pairs_of(live_edge_set(state))
    n = state.decomposition.num_vertices
    alg = get_algorithm(ALGORITHM)

    def tip_values(pairs):
        graph = CSRGraph.from_edge_set(
            EdgeSet.from_pairs(sorted(pairs)), n, weight_fn=state.weight_fn,
        )
        return static_compute(graph, alg, SOURCE, track_parents=True).values

    script = []
    expected = {tip_values(live).tobytes()}
    rng = np.random.default_rng(1337)
    for step in range(N_UPDATES):
        if step % 3 == 2 and live:
            present = sorted(live)
            u, v = present[int(rng.integers(len(present)))]
            script.append(("delete", u, v))
            live = live - {(u, v)}
        else:
            absent = sorted(
                (u, v)
                for u in range(n) for v in range(n)
                if u != v and (u, v) not in live
            )
            u, v = absent[int(rng.integers(len(absent)))]
            script.append(("insert", u, v))
            live = live | {(u, v)}
        expected.add(tip_values(live).tobytes())
    return script, expected, live


def test_compaction_racing_live_queries(livetip_store, livetip_weights):
    state = ServiceState(livetip_store, weight_fn=livetip_weights,
                         livetip_max_updates=FOLD_EVERY)
    try:
        script, expected, final_live = build_script(state)
        stop = threading.Event()
        errors = []
        torn = []
        answered = [0] * N_READERS

        def reader(index):
            try:
                while not stop.is_set():
                    answer = state.query(ALGORITHM, SOURCE)
                    answered[index] += 1
                    tip = answer.values[-1].tobytes()
                    if tip not in expected:
                        torn.append(answer.livetip_seq)
            except BaseException as exc:  # any error fails the storm
                errors.append(exc)

        readers = [
            threading.Thread(target=reader, args=(i,), name=f"reader-{i}")
            for i in range(N_READERS)
        ]
        for thread in readers:
            thread.start()
        receipts = [state.update(kind, u, v) for kind, u, v in script]
        final = state.compact_tip()
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
        assert not errors, errors
        assert torn == [], f"torn tips at livetip_seq={torn}"
        assert all(count > 0 for count in answered)
        # The folds really happened, inline and on schedule.
        folds = [r for r in receipts if r["compacted"]]
        assert len(folds) == N_UPDATES // FOLD_EVERY
        versions = [r["tip_version"] for r in receipts]
        assert versions == sorted(versions)
        # Everything folded: the durable tip IS the final live set.
        assert final["overlay_depth"] == 0
        store_tip = state.store.load().snapshot_edges(-1)
        assert store_tip == EdgeSet.from_pairs(sorted(final_live))
        # And the post-storm answer is the last prefix's oracle, clean.
        answer = state.query(ALGORITHM, SOURCE)
        assert answer.livetip_seq is None
        assert answer.values[-1].tobytes() in expected
    finally:
        state.close()
