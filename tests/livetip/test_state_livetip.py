"""ServiceState + live tip: receipts, query patching, compaction folds.

The acceptance law, asserted across every algorithm: queries at the
tip equal a ``WorkSharingEvaluator`` on an **equivalent materialized
snapshot** (the store's history plus the overlay's net batch as one
more real snapshot), and stay bit-identical after the log is folded
into the Triangular Grid for real.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.engine import WorkSharingEvaluator
from repro.errors import ProtocolError, ServiceError
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet
from repro.service import ServiceState
from repro.temporal.plan import parse_specs

from tests.conftest import assert_values_equal
from tests.livetip.conftest import (
    absent_pairs,
    present_pairs,
    reference_tip_values,
)

pytestmark = pytest.mark.livetip


def materialized_evaluator_values(state, algorithm, source):
    """Per-snapshot values from a from-scratch ``WorkSharingEvaluator``
    on the store's history *plus* the overlay's pending net batch as a
    real final snapshot — the materialization the live tip must match."""
    evolving = state.store.load()
    batches = list(evolving.batches)
    if state._livetip is not None and state._livetip.depth:
        net, _, _ = state._livetip.seal()
        if net.size:
            batches.append(net)
    materialized = EvolvingGraph(
        evolving.num_vertices, evolving.snapshot_edges(0), batches,
    )
    decomposition = CommonGraphDecomposition.from_evolving(materialized)
    alg = get_algorithm(algorithm)
    return WorkSharingEvaluator(
        decomposition, alg, source, weight_fn=state.weight_fn,
    ).run().snapshot_values


class TestUpdateReceipts:
    def test_insert_receipt(self, livetip_state):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        receipt = livetip_state.update("insert", u, v)
        assert receipt["kind"] == "insert"
        assert receipt["edge"] == [u, v]
        assert receipt["seq"] == 1
        assert receipt["tip_version"] == 4
        assert receipt["overlay_depth"] == 1
        assert receipt["compacted"] is False

    def test_updates_do_not_bump_the_epoch(self, livetip_state):
        epoch = livetip_state.epoch
        (u, v) = absent_pairs(livetip_state, 1)[0]
        receipt = livetip_state.update("insert", u, v)
        assert receipt["epoch"] == epoch
        assert livetip_state.epoch == epoch
        assert livetip_state.num_versions == 5  # no new snapshot either

    def test_edge_required_for_insert(self, livetip_state):
        with pytest.raises(ProtocolError):
            livetip_state.update("insert")

    def test_compact_refuses_an_edge(self, livetip_state):
        with pytest.raises(ProtocolError):
            livetip_state.update("compact", 0, 1)

    def test_disabled_livetip_refuses_updates(self, livetip_store,
                                              livetip_weights):
        state = ServiceState(livetip_store, weight_fn=livetip_weights,
                             livetip=False)
        try:
            with pytest.raises(ServiceError):
                state.update("insert", 0, 1)
        finally:
            state.close()


class TestQueryPatching:
    def test_tip_values_are_patched(self, livetip_state):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        livetip_state.update("insert", u, v)
        answer = livetip_state.query("SSSP", 0)
        assert answer.livetip_seq == 1
        assert_values_equal(
            answer.values[-1], reference_tip_values(livetip_state, "SSSP", 0),
            "patched tip",
        )

    def test_history_is_untouched(self, livetip_state):
        before = livetip_state.query("SSSP", 0)
        (u, v) = absent_pairs(livetip_state, 1)[0]
        livetip_state.update("insert", u, v)
        after = livetip_state.query("SSSP", 0)
        for index in range(len(before.values) - 1):
            assert_values_equal(before.values[index], after.values[index],
                                f"snapshot {index}")

    def test_non_tip_ranges_are_never_patched(self, livetip_state):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        livetip_state.update("insert", u, v)
        answer = livetip_state.query("SSSP", 0, first=0, last=3)
        assert answer.livetip_seq is None

    def test_patched_values_do_not_poison_the_cache(self, livetip_state):
        (u, v), (x, y) = absent_pairs(livetip_state, 2)
        livetip_state.update("insert", u, v)
        first = livetip_state.query("SSSP", 0)
        # The cached entry is the pure-TG answer: a later query re-patches
        # from the overlay's *current* state, not the stale patch.
        livetip_state.update("insert", x, y)
        second = livetip_state.query("SSSP", 0)
        assert second.from_cache is True
        assert second.livetip_seq == 2
        assert first.livetip_seq == 1
        assert_values_equal(
            second.values[-1],
            reference_tip_values(livetip_state, "SSSP", 0),
            "re-patched cache hit",
        )

    def test_offline_answer_is_patched_too(self, livetip_state):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        livetip_state.update("insert", u, v)
        answer = livetip_state.offline_answer("SSSP", 0, 0, 4)
        assert answer.livetip_seq == 1
        assert_values_equal(
            answer.values[-1], reference_tip_values(livetip_state, "SSSP", 0),
            "patched offline tip",
        )

    def test_temporal_point_at_tip_sees_the_overlay(self, livetip_state):
        (u, v) = present_pairs(livetip_state, 1)[0]
        livetip_state.update("delete", u, v)
        answer = livetip_state.temporal(
            "BFS", 0, parse_specs([{"mode": "point", "as_of": 4}]),
        )
        (result,) = answer.results
        assert_values_equal(
            result["values"], reference_tip_values(livetip_state, "BFS", 0),
            "temporal tip point",
        )

    def test_temporal_history_point_is_pure_tg(self, livetip_state):
        pure = livetip_state.temporal(
            "BFS", 0, parse_specs([{"mode": "point", "as_of": 2}]),
        )
        (u, v) = absent_pairs(livetip_state, 1)[0]
        livetip_state.update("insert", u, v)
        patched = livetip_state.temporal(
            "BFS", 0, parse_specs([{"mode": "point", "as_of": 2}]),
        )
        assert_values_equal(
            pure.results[0]["values"], patched.results[0]["values"],
            "history point",
        )


class TestAcceptanceBitIdentity:
    def test_tip_matches_materialized_evaluator(self, livetip_state,
                                                algorithm):
        inserts = absent_pairs(livetip_state, 2)
        deletes = present_pairs(livetip_state, 1)
        for u, v in inserts:
            livetip_state.update("insert", u, v)
        for u, v in deletes:
            livetip_state.update("delete", u, v)
        name = algorithm.name
        expected = materialized_evaluator_values(livetip_state, name, 0)
        before = livetip_state.query(name, 0)
        assert before.livetip_seq == 3
        assert_values_equal(before.values[-1], expected[-1],
                            f"{name} pre-compaction tip")
        # Fold the log into a real TG column: the same question must
        # produce the same bits, now answered by the grid itself.
        receipt = livetip_state.compact_tip()
        assert receipt["compacted"] is True
        assert receipt["updates_folded"] == 3
        assert receipt["overlay_depth"] == 0
        after = livetip_state.query(name, 0, first=5, last=5)
        assert after.livetip_seq is None
        assert_values_equal(after.values[0], expected[-1],
                            f"{name} post-compaction tip")


class TestCompactionThroughTheState:
    def test_threshold_fold_fires_inline(self, livetip_store,
                                         livetip_weights):
        state = ServiceState(livetip_store, weight_fn=livetip_weights,
                             livetip_max_updates=3)
        try:
            edges = absent_pairs(state, 3)
            receipts = [state.update("insert", u, v) for u, v in edges]
            assert [r["compacted"] for r in receipts] == [False, False, True]
            final = receipts[-1]
            assert final["updates_folded"] == 3
            assert final["tip_version"] == 5  # one new TG column
            assert final["overlay_depth"] == 0
            assert state.num_versions == 6
            assert state.epoch == 1
        finally:
            state.close()

    def test_net_zero_fold_collapses_without_a_version(self, livetip_state):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        livetip_state.update("insert", u, v)
        livetip_state.update("delete", u, v)
        receipt = livetip_state.compact_tip()
        assert receipt["compacted"] is True
        assert receipt["updates_folded"] == 2
        assert receipt["tip_version"] == 4  # no append
        assert livetip_state.num_versions == 5
        assert livetip_state.epoch == 0

    def test_clean_compact_is_a_noop(self, livetip_state):
        receipt = livetip_state.compact_tip()
        assert receipt["compacted"] is False
        assert receipt["updates_folded"] == 0

    def test_ingest_flushes_pending_updates_first(self, livetip_state):
        (u, v), (x, y) = absent_pairs(livetip_state, 2)
        livetip_state.update("insert", u, v)
        livetip_state.update("insert", x, y)
        # A batch valid against the *live* tip (the flush lands first).
        (a, b) = absent_pairs(livetip_state, 1)[0]
        receipt = livetip_state.ingest(DeltaBatch(
            additions=EdgeSet.from_pairs([(a, b)]),
            deletions=EdgeSet.empty(),
        ))
        # Strictly consecutive: flush folded to version 5, batch is 6.
        assert receipt["version"] == 6
        assert livetip_state._livetip.depth == 0
        assert livetip_state._livetip.tip_version == 6
        tip = livetip_state.store.load().snapshot_edges(-1)
        for edge in ((u, v), (x, y), (a, b)):
            assert edge in tip

    def test_receipt_versions_stay_consecutive(self, livetip_store,
                                               livetip_weights):
        state = ServiceState(livetip_store, weight_fn=livetip_weights,
                             livetip_max_updates=2)
        try:
            versions = [state.latest_version]
            for _ in range(3):
                for u, v in absent_pairs(state, 2):
                    receipt = state.update("insert", u, v)
                versions.append(receipt["tip_version"])
            assert versions == [4, 5, 6, 7]
            assert state.store.load().num_snapshots == 8
        finally:
            state.close()


class TestStatusBlock:
    def test_before_first_update(self, livetip_state):
        block = livetip_state.status()["livetip"]
        assert block["enabled"] is True
        assert block["overlay_depth"] == 0
        assert block["updates_total"] == 0
        assert block["compactions"] == 0

    def test_after_updates_and_a_fold(self, livetip_state):
        (u, v), (x, y) = absent_pairs(livetip_state, 2)
        livetip_state.update("insert", u, v)
        livetip_state.compact_tip()
        livetip_state.update("insert", x, y)
        block = livetip_state.status()["livetip"]
        assert block["tip_version"] == 5
        assert block["overlay_depth"] == 1
        assert block["pending_updates"] == 1
        assert block["updates_total"] == 2
        assert block["update_counts"] == {"insert": 2, "delete": 0}
        assert block["compactions"] == 1
        assert block["updates_folded"] == 1
        assert block["last_compaction_version"] == 5
        assert block["max_updates"] == 64
