"""End-to-end live-tip tests over the wire: the ``update`` op, the
live admission lane, the status block, and the ``repro update`` CLI.
"""

from __future__ import annotations

import io
import json
import threading
import time
from contextlib import redirect_stdout

import pytest

from repro import faults
from repro.cli import main
from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service import (
    AdmissionPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
)

from tests.conftest import assert_values_equal
from tests.livetip.conftest import (
    absent_pairs,
    present_pairs,
    reference_tip_values,
)

pytestmark = pytest.mark.livetip


@pytest.fixture
def runner(livetip_state):
    with ServiceRunner(livetip_state) as running:
        yield running


@pytest.fixture
def client(runner):
    with ServiceClient(port=runner.port) as connected:
        yield connected


class TestWireUpdates:
    def test_insert_receipt_over_the_wire(self, livetip_state, client):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        receipt = client.update("insert", u, v)
        assert receipt["ok"] is True
        assert receipt["op"] == "update"
        assert receipt["kind"] == "insert"
        assert receipt["seq"] == 1
        assert receipt["tip_version"] == 4
        assert receipt["overlay_depth"] == 1

    def test_query_sees_the_update_immediately(self, livetip_state, client):
        (u, v) = present_pairs(livetip_state, 1)[0]
        client.update("delete", u, v)
        response = client.query("SSSP", 0)
        assert response["livetip_seq"] == 1
        assert_values_equal(
            response["values"][-1],
            reference_tip_values(livetip_state, "SSSP", 0),
            "wire-patched tip",
        )

    def test_compact_over_the_wire(self, livetip_state, client):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        client.update("insert", u, v)
        receipt = client.update("compact")
        assert receipt["compacted"] is True
        assert receipt["updates_folded"] == 1
        assert receipt["tip_version"] == 5
        assert receipt["overlay_depth"] == 0
        # Clean overlay: the next answer is pure TG, same bits.
        response = client.query("SSSP", 0, first=5, last=5)
        assert "livetip_seq" not in response
        assert_values_equal(
            response["values"][0],
            reference_tip_values(livetip_state, "SSSP", 0),
            "post-fold tip",
        )

    def test_duplicate_insert_is_refused(self, livetip_state, client):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        client.update("insert", u, v)
        response = client.request({"op": "update", "kind": "insert",
                                   "edge": [u, v]})
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"
        # The refusal was not absorbed: depth still 1.
        assert client.status()["livetip"]["overlay_depth"] == 1

    def test_compact_with_edge_dies_client_side(self, client):
        with pytest.raises(ProtocolError):
            client.update("compact", 0, 1)

    def test_malformed_edge_rejected(self, client):
        response = client.request({"op": "update", "kind": "insert",
                                   "edge": [1]})
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"

    def test_status_counts_updates(self, livetip_state, client):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        client.update("insert", u, v)
        status = client.status()
        assert status["server"]["updates"] == 1
        block = status["livetip"]
        assert block["enabled"] is True
        assert block["overlay_depth"] == 1
        assert block["updates_total"] == 1

    def test_disabled_livetip_over_the_wire(self, livetip_store,
                                            livetip_weights):
        from repro.service import ServiceState

        state = ServiceState(livetip_store, weight_fn=livetip_weights,
                             livetip=False)
        try:
            with ServiceRunner(state) as runner:
                with ServiceClient(port=runner.port) as client:
                    with pytest.raises(ServiceError):
                        client.update("insert", 0, 1)
                    status = client.status()
            assert status["livetip"]["enabled"] is False
        finally:
            state.close()


class TestLiveLane:
    def test_full_live_queue_sheds_the_second_update(self, livetip_state):
        config = ServiceConfig(live_admission=AdmissionPolicy(
            max_concurrent=1, max_queue=0, queue_timeout=0.05,
        ))
        edges = absent_pairs(livetip_state, 2)
        plan = faults.FaultPlan().delay_service(0.6, match="update:*",
                                                times=1)
        outcomes = []

        def update(edge):
            with ServiceClient(port=runner.port,
                               overload_retries=0) as connected:
                try:
                    outcomes.append(connected.update("insert", *edge))
                except ServiceOverloadedError as exc:
                    outcomes.append(exc)

        with plan.active(), ServiceRunner(livetip_state, config) as runner:
            slow = threading.Thread(target=update, args=(edges[0],))
            slow.start()
            # Give the stalled update time to occupy the single slot.
            time.sleep(0.2)
            update(edges[1])
            slow.join()
        sheds = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        applied = [o for o in outcomes if isinstance(o, dict)]
        assert len(sheds) == 1 and len(applied) == 1
        # A shed update was *not* absorbed: only one edge is pending.
        assert livetip_state._livetip.depth == 1


class TestCli:
    def test_update_insert_json(self, livetip_state, runner):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["update", "insert", "--edge", f"{u},{v}",
                         "--connect", f"127.0.0.1:{runner.port}", "--json"])
        assert code == 0
        receipt = json.loads(buffer.getvalue())
        assert receipt["kind"] == "insert"
        assert receipt["seq"] == 1
        assert receipt["overlay_depth"] == 1

    def test_update_compact_renders_summary(self, livetip_state, runner,
                                            capsys):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        assert main(["update", "insert", "--edge", f"{u},{v}",
                     "--connect", f"127.0.0.1:{runner.port}"]) == 0
        assert main(["update", "compact",
                     "--connect", f"127.0.0.1:{runner.port}"]) == 0
        out = capsys.readouterr().out
        assert "compacted 1 update(s)" in out

    def test_update_requires_an_edge(self, capsys):
        assert main(["update", "insert"]) == 2
        assert "requires --edge" in capsys.readouterr().err

    def test_compact_refuses_an_edge(self, capsys):
        assert main(["update", "compact", "--edge", "1,2"]) == 2
        assert "carries no --edge" in capsys.readouterr().err

    def test_info_connect_shows_live_tip(self, livetip_state, runner,
                                         capsys):
        (u, v) = absent_pairs(livetip_state, 1)[0]
        assert main(["update", "insert", "--edge", f"{u},{v}",
                     "--connect", f"127.0.0.1:{runner.port}"]) == 0
        capsys.readouterr()
        assert main(["info", "--connect",
                     f"127.0.0.1:{runner.port}"]) == 0
        out = capsys.readouterr().out
        assert "live tip" in out
        assert "pending_updates" in out
        assert "overlay_depth" in out
