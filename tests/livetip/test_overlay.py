"""LiveTipOverlay unit tests: validation, repair exactness, compaction
protocol, and hypothesis-driven interleavings against a from-scratch
oracle.

The load-bearing invariant: values a capture resolves to are
**bit-identical** to ``static_compute`` on the materialized live edge
set, whether they came from an incremental repair of a tracked state
or a lazy from-scratch resolve — for every algorithm, after any valid
interleaving of inserts, deletes and queries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import get_algorithm
from repro.errors import ProtocolError, ServiceError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from repro.livetip import LiveTipOverlay

from tests.conftest import ALL_ALGORITHMS, assert_values_equal
from tests.strategies import edge_pairs

pytestmark = pytest.mark.livetip

WF = HashWeights(max_weight=8, seed=7)

#: A diamond with a tail plus a spare vertex, dense enough for deletes
#: with alternate routes and sparse enough for inserts.
TIP = EdgeSet.from_pairs(
    [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (0, 6)]
)
N = 7


def make_overlay(**kwargs):
    kwargs.setdefault("weight_fn", WF)
    return LiveTipOverlay(TIP, N, tip_version=4, **kwargs)


def oracle(edges: EdgeSet, algorithm: str, source: int = 0) -> np.ndarray:
    graph = CSRGraph.from_edge_set(edges, N, weight_fn=WF)
    return static_compute(
        graph, get_algorithm(algorithm), source, track_parents=True,
    ).values


def resolve(overlay, algorithm: str, source: int = 0) -> np.ndarray:
    capture = overlay.capture(get_algorithm(algorithm), source)
    assert capture is not None
    return capture.resolve()


class TestValidation:
    def test_unknown_kind_rejected(self):
        overlay = make_overlay()
        with pytest.raises(ProtocolError):
            overlay.apply_update("upsert", 0, 1)

    @pytest.mark.parametrize("edge", [(-1, 0), (0, N), (N, 0)])
    def test_endpoint_out_of_range(self, edge):
        overlay = make_overlay()
        with pytest.raises(ProtocolError):
            overlay.apply_update("insert", *edge)

    def test_insert_present_edge_rejected(self):
        overlay = make_overlay()
        with pytest.raises(ProtocolError):
            overlay.apply_update("insert", 0, 1)

    def test_delete_absent_edge_rejected(self):
        overlay = make_overlay()
        with pytest.raises(ProtocolError):
            overlay.apply_update("delete", 5, 0)

    def test_refusal_leaves_overlay_untouched(self):
        # Replicas must reject identical updates identically *and*
        # cheaply: a refusal is not an absorbed update.
        overlay = make_overlay()
        with pytest.raises(ProtocolError):
            overlay.apply_update("insert", 0, 1)
        assert overlay.seq == 0
        assert overlay.depth == 0
        assert overlay.live_edges() == TIP

    def test_max_tracked_must_be_positive(self):
        with pytest.raises(ServiceError):
            make_overlay(max_tracked=0)


class TestReceipts:
    def test_receipts_are_sequential(self):
        overlay = make_overlay()
        first = overlay.apply_update("insert", 5, 0)
        second = overlay.apply_update("delete", 4, 5)
        assert first == {"seq": 1, "tip_version": 4, "overlay_depth": 1}
        assert second == {"seq": 2, "tip_version": 4, "overlay_depth": 2}

    def test_snapshot_counts(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        overlay.apply_update("delete", 5, 0)
        snap = overlay.snapshot()
        assert snap["overlay_depth"] == 2
        assert snap["updates_total"] == 2
        assert snap["update_counts"] == {"insert": 1, "delete": 1}
        assert snap["live_edges"] == len(TIP)

    def test_clean_overlay_captures_nothing(self):
        overlay = make_overlay()
        assert overlay.capture(get_algorithm("BFS"), 0) is None

    def test_capture_refused_on_version_mismatch(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        assert overlay.capture(get_algorithm("BFS"), 0,
                               tip_version=3) is None
        assert overlay.capture(get_algorithm("BFS"), 0,
                               tip_version=4) is not None


class TestRepairExactness:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_untracked_resolve_equals_scratch(self, name):
        overlay = make_overlay()
        overlay.apply_update("insert", 6, 5)
        live = TIP.union(EdgeSet.from_pairs([(6, 5)]))
        assert_values_equal(resolve(overlay, name), oracle(live, name),
                            f"{name} lazy resolve")

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_insert_repairs_tracked_state(self, name):
        overlay = make_overlay()
        overlay.apply_update("insert", 6, 5)
        resolve(overlay, name)  # adopt: next update repairs in place
        assert overlay.tracked_states == 1
        overlay.apply_update("insert", 6, 4)
        live = TIP.union(EdgeSet.from_pairs([(6, 5), (6, 4)]))
        assert_values_equal(resolve(overlay, name), oracle(live, name),
                            f"{name} insert repair")

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_delete_repairs_tracked_state(self, name):
        overlay = make_overlay()
        overlay.apply_update("insert", 6, 5)
        resolve(overlay, name)
        # (1, 3) severs the shorter branch of the diamond; repair must
        # reroute 3's value through (2, 3).
        overlay.apply_update("delete", 1, 3)
        live = TIP.union(EdgeSet.from_pairs([(6, 5)])).difference(
            EdgeSet.from_pairs([(1, 3)])
        )
        assert_values_equal(resolve(overlay, name), oracle(live, name),
                            f"{name} delete repair")

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_delete_disconnects_subtree(self, name):
        # (3, 4) is the sole in-edge of 4, which feeds 5: the repaired
        # state must push unreachability down the tail.
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 6)
        resolve(overlay, name)
        overlay.apply_update("delete", 3, 4)
        live = TIP.union(EdgeSet.from_pairs([(5, 6)])).difference(
            EdgeSet.from_pairs([(3, 4)])
        )
        assert_values_equal(resolve(overlay, name), oracle(live, name),
                            f"{name} disconnect repair")


class TestAdoption:
    def test_resolve_adopts_fresh_state(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        capture = overlay.capture(get_algorithm("BFS"), 0)
        assert overlay.tracked_states == 0
        capture.resolve()
        assert overlay.tracked_states == 1

    def test_stale_resolve_is_not_adopted(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        capture = overlay.capture(get_algorithm("BFS"), 0)
        overlay.apply_update("insert", 5, 1)  # moves seq past the capture
        values = capture.resolve()
        assert overlay.tracked_states == 0
        # The capture still answers for *its* instant, not the new one.
        assert_values_equal(
            values, oracle(TIP.union(EdgeSet.from_pairs([(5, 0)])), "BFS"),
            "stale capture",
        )

    def test_tracked_states_are_lru_bounded(self):
        overlay = make_overlay(max_tracked=2)
        overlay.apply_update("insert", 5, 0)
        for source in (0, 1, 2):
            resolve(overlay, "BFS", source)
        assert overlay.tracked_states == 2


class TestCompactionProtocol:
    def test_seal_is_the_net_diff(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        overlay.apply_update("delete", 4, 5)
        batch, depth, seq = overlay.seal()
        assert (depth, seq) == (2, 2)
        assert sorted(batch.additions) == [(5, 0)]
        assert sorted(batch.deletions) == [(4, 5)]

    def test_churn_cancels_in_the_seal(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        overlay.apply_update("delete", 5, 0)
        overlay.apply_update("delete", 0, 6)
        overlay.apply_update("insert", 0, 6)
        batch, depth, _ = overlay.seal()
        assert depth == 4
        assert batch.size == 0

    def test_collapse_requires_a_current_seal(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        overlay.apply_update("delete", 5, 0)
        _, _, seq = overlay.seal()
        overlay.apply_update("insert", 5, 1)  # lands after the seal
        assert overlay.collapse(seq) is False
        _, _, seq = overlay.seal()
        assert overlay.collapse(seq) is True
        assert overlay.depth == 0
        assert overlay.seq == 3  # lifetime counter survives the collapse

    def test_rebase_after_own_compaction_empties_the_log(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        live = overlay.live_edges()
        assert overlay.rebase_onto(live, tip_version=5) == 0
        assert overlay.tip_version == 5
        assert overlay.depth == 0
        assert overlay.live_edges() == live
        # Tracked states survive: the live set did not change.
        resolve_before = overlay.capture(get_algorithm("BFS"), 0)
        assert resolve_before is None  # clean overlay: the tip answers

    def test_rebase_after_foreign_append_keeps_unsatisfied_updates(self):
        overlay = make_overlay()
        overlay.apply_update("insert", 5, 0)
        overlay.apply_update("delete", 0, 6)
        # A foreign batch lands that already contains the insert but
        # not the delete: the insert is satisfied, the delete stays.
        foreign_tip = TIP.union(EdgeSet.from_pairs([(5, 0), (6, 3)]))
        kept = overlay.rebase_onto(foreign_tip, tip_version=5)
        assert kept == 1
        assert overlay.depth == 1
        expected = foreign_tip.difference(EdgeSet.from_pairs([(0, 6)]))
        assert overlay.live_edges() == expected

    def test_rebase_drops_net_zero_churn(self):
        # delete-then-reinsert composes to a no-op: weights are
        # deterministic per edge, so once the tip already shows the
        # edge nothing stays pending.
        overlay = make_overlay()
        overlay.apply_update("delete", 0, 6)
        overlay.apply_update("insert", 0, 6)
        kept = overlay.rebase_onto(TIP, tip_version=5)
        assert kept == 0
        assert overlay.live_edges() == TIP


@settings(max_examples=25, deadline=None)
@given(spec=edge_pairs(max_vertices=8, max_edges=20),
       data=st.data())
@pytest.mark.parametrize("name", ["BFS", "SSSP"])
def test_interleaved_updates_equal_scratch(name, spec, data):
    """Any valid insert/delete/query interleaving stays bit-identical.

    Queries are drawn *mid-stream* so later updates repair adopted
    states incrementally — the path under test — rather than falling
    back to a final from-scratch resolve.
    """
    n, pairs = spec
    tip = EdgeSet.from_pairs(pairs)
    overlay = LiveTipOverlay(tip, n, tip_version=0, weight_fn=WF)
    alg = get_algorithm(name)
    live = set(pairs)
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    steps = data.draw(st.integers(min_value=1, max_value=12), label="steps")
    for _ in range(steps):
        op = data.draw(st.sampled_from(["insert", "delete", "query"]),
                       label="op")
        if op == "query":
            if not overlay.depth:
                continue
            source = data.draw(st.integers(0, n - 1), label="source")
            capture = overlay.capture(alg, source)
            expected = static_compute(
                CSRGraph.from_edge_set(
                    EdgeSet.from_pairs(sorted(live)), n, weight_fn=WF),
                alg, source, track_parents=True,
            ).values
            assert_values_equal(capture.resolve(), expected,
                                f"{name} mid-stream query")
            continue
        candidates = (sorted(set(possible) - live) if op == "insert"
                      else sorted(live))
        if not candidates:
            continue
        index = data.draw(st.integers(0, len(candidates) - 1), label="edge")
        u, v = candidates[index]
        overlay.apply_update(op, u, v)
        live = live | {(u, v)} if op == "insert" else live - {(u, v)}
    assert overlay.live_edges() == EdgeSet.from_pairs(sorted(live))
    if overlay.depth:
        for source in range(min(n, 3)):
            expected = static_compute(
                CSRGraph.from_edge_set(
                    EdgeSet.from_pairs(sorted(live)), n, weight_fn=WF),
                alg, source, track_parents=True,
            ).values
            assert_values_equal(resolve(overlay, name, source), expected,
                                f"{name} final source {source}")
