"""ServiceState: incremental ingestion, window sliding, epochs, caching."""

from __future__ import annotations

import pytest

from repro.core.common import CommonGraphDecomposition
from repro.errors import AlgorithmError, ServiceError
from repro.evolving.store import SnapshotStore
from repro.service import ServiceState

from tests.conftest import assert_values_equal
from tests.service.conftest import valid_batch


def assert_decompositions_equal(a, b, context=""):
    __tracebackhide__ = True
    assert a.num_vertices == b.num_vertices, context
    assert a.num_snapshots == b.num_snapshots, context
    assert a.common == b.common, f"{context}: common graphs differ"
    for index, (sa, sb) in enumerate(zip(a.surpluses, b.surpluses)):
        assert sa == sb, f"{context}: surplus {index} differs"
    n = a.num_snapshots
    for i in range(n):
        for j in range(i, n):
            assert a.interval_surplus(i, j) == b.interval_surplus(i, j), (
                f"{context}: interval surplus ({i}, {j}) differs"
            )


class TestIncrementalIngestion:
    def test_ingest_matches_from_scratch_rebuild(self, service_state):
        """After each ingest the incrementally-extended decomposition is
        indistinguishable from one rebuilt from the whole store."""
        for round_no in range(2):
            service_state.ingest(
                valid_batch(service_state.store, n_add=3, n_del=2)
            )
            rebuilt = CommonGraphDecomposition.from_evolving(
                service_state.store.load()
            )
            assert_decompositions_equal(
                service_state.decomposition, rebuilt,
                f"after ingest {round_no}",
            )

    def test_ingest_receipt(self, service_state):
        before = service_state.latest_version
        receipt = service_state.ingest(valid_batch(service_state.store))
        assert receipt["version"] == before + 1
        assert receipt["epoch"] == 1
        assert receipt["window_last"] == before + 1

    def test_epoch_bumps_per_ingest(self, service_state):
        assert service_state.epoch == 0
        service_state.ingest(valid_batch(service_state.store))
        service_state.ingest(valid_batch(service_state.store))
        assert service_state.epoch == 2
        assert service_state.ingests == 2

    def test_external_append_through_store_is_observed(self, service_state):
        """Any append on the store handle (not just ``ingest``) updates
        the decomposition, via the subscription."""
        before = service_state.decomposition.num_snapshots
        service_state.store.append(valid_batch(service_state.store))
        assert service_state.decomposition.num_snapshots == before + 1
        assert service_state.epoch == 1


class TestWindow:
    def test_window_restricts_initial_decomposition(self, service_store,
                                                    service_weights):
        state = ServiceState(service_store, weight_fn=service_weights,
                             window=3)
        try:
            assert state.decomposition.num_snapshots == 3
            assert state.base_version == 2
            assert state.latest_version == 4
            rebuilt = CommonGraphDecomposition.from_evolving(
                service_store.load()
            ).restrict(2, 4)
            assert_decompositions_equal(state.decomposition, rebuilt)
        finally:
            state.close()

    def test_window_slides_on_ingest(self, service_store, service_weights):
        state = ServiceState(service_store, weight_fn=service_weights,
                             window=3)
        try:
            state.ingest(valid_batch(service_store))
            assert state.decomposition.num_snapshots == 3
            assert state.base_version == 3
            assert state.latest_version == 5
            rebuilt = CommonGraphDecomposition.from_evolving(
                service_store.load()
            ).restrict(3, 5)
            assert_decompositions_equal(state.decomposition, rebuilt,
                                        "slid window")
        finally:
            state.close()

    def test_query_outside_window_refused(self, service_store,
                                          service_weights):
        state = ServiceState(service_store, weight_fn=service_weights,
                             window=3)
        try:
            with pytest.raises(ServiceError, match="outside the window"):
                state.query("BFS", 0, first=0, last=1)
            # Absolute versions inside the window still work.
            answer = state.query("BFS", 0, first=3, last=4)
            assert (answer.first, answer.last) == (3, 4)
        finally:
            state.close()

    def test_window_must_be_positive(self, service_store):
        with pytest.raises(ServiceError):
            ServiceState(service_store, window=0)


class TestResync:
    def test_failed_incremental_extension_resyncs_from_store(
        self, service_state, monkeypatch
    ):
        """The store notifies *after* the append is durable, so a
        failing incremental extension must not leave the state silently
        behind the store — it rebuilds from the store instead."""

        def boom(self, new_edges):
            raise RuntimeError("injected extension failure")

        monkeypatch.setattr(CommonGraphDecomposition, "extended", boom)
        receipt = service_state.ingest(valid_batch(service_state.store))
        monkeypatch.undo()
        assert service_state.resyncs == 1
        assert receipt["epoch"] == 1
        assert receipt["version"] == 5
        rebuilt = CommonGraphDecomposition.from_evolving(
            service_state.store.load()
        )
        assert_decompositions_equal(
            service_state.decomposition, rebuilt, "after resync"
        )
        answer = service_state.query("BFS", 0)
        offline = service_state.offline_answer(
            "BFS", 0, answer.first, answer.last
        )
        for got, want in zip(answer.values, offline.values):
            assert_values_equal(got, want, "post-resync answer")

    def test_unresyncable_state_poisons_queries_until_recovery(
        self, service_state, monkeypatch
    ):
        """If even the rebuild fails, queries must fail loudly rather
        than answer from a graph that no longer matches the store."""
        batch = valid_batch(service_state.store)

        def boom(*args, **kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(CommonGraphDecomposition, "extended", boom)
        monkeypatch.setattr(SnapshotStore, "load", boom)
        with pytest.raises(RuntimeError):
            service_state.ingest(batch)  # durable, but the state can't follow
        with pytest.raises(ServiceError, match="out of sync"):
            service_state.query("BFS", 0)
        with pytest.raises(ServiceError, match="out of sync"):
            service_state.offline_answer("BFS", 0, 0, 1)
        monkeypatch.undo()
        payload = service_state.status()
        assert payload["poisoned"] is True
        assert payload["serving"] is False
        # The next successful notification resynchronises and recovers.
        service_state.ingest(valid_batch(service_state.store))
        assert service_state.resyncs == 1
        assert service_state.status()["poisoned"] is False
        rebuilt = CommonGraphDecomposition.from_evolving(
            service_state.store.load()
        )
        assert_decompositions_equal(
            service_state.decomposition, rebuilt, "after recovery"
        )
        answer = service_state.query("BFS", 0)
        offline = service_state.offline_answer(
            "BFS", 0, answer.first, answer.last
        )
        for got, want in zip(answer.values, offline.values):
            assert_values_equal(got, want, "post-recovery answer")


class TestQueries:
    def test_values_match_offline_answer(self, service_state, algorithm):
        answer = service_state.query(algorithm.name, 0)
        offline = service_state.offline_answer(
            algorithm.name, 0, answer.first, answer.last
        )
        assert len(answer.values) == len(offline.values)
        for version, (got, want) in enumerate(
            zip(answer.values, offline.values)
        ):
            assert_values_equal(got, want, f"{algorithm.name} v{version}")

    def test_second_query_served_from_result_cache(self, service_state):
        cold = service_state.query("SSSP", 0)
        warm = service_state.query("SSSP", 0)
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.node_hits == warm.node_misses == 0
        for got, want in zip(warm.values, cold.values):
            assert_values_equal(got, want, "cached answer")
        assert service_state.result_cache.stats.hits == 1

    def test_cached_answer_is_a_defensive_copy(self, service_state):
        first = service_state.query("SSSP", 0)
        first.values[0][:] = -1.0
        again = service_state.query("SSSP", 0)
        assert not (again.values[0] == -1.0).all()

    def test_overlapping_query_reuses_node_states(self, service_state):
        service_state.query("SSSP", 0, first=0, last=3)
        warm = service_state.query("SSSP", 0, first=1, last=3)
        assert not warm.from_cache
        assert warm.node_hits > 0

    def test_ingest_invalidates_result_cache(self, service_state):
        service_state.query("SSSP", 0, first=0, last=2)
        service_state.ingest(valid_batch(service_state.store))
        answer = service_state.query("SSSP", 0, first=0, last=2)
        assert not answer.from_cache
        assert answer.epoch == 1
        # The old-epoch entries were purged eagerly, not just shadowed.
        assert all(key[-1] == 1 for key in service_state.result_cache.keys())
        assert all(key[2] == 1 for key in service_state.node_cache.keys())

    def test_unknown_algorithm(self, service_state):
        with pytest.raises(AlgorithmError):
            service_state.query("NotAnAlgorithm", 0)

    def test_source_out_of_range(self, service_state):
        with pytest.raises(ServiceError, match="source"):
            service_state.query("BFS", 10_000)

    def test_invalid_range(self, service_state):
        with pytest.raises(ServiceError, match="outside the window"):
            service_state.query("BFS", 0, first=3, last=1)
        with pytest.raises(ServiceError, match="outside the window"):
            service_state.query("BFS", 0, first=0, last=99)


class TestStatus:
    def test_status_payload(self, service_state):
        service_state.query("BFS", 0)
        service_state.query("BFS", 0)
        payload = service_state.status()
        assert payload["serving"] is True
        assert payload["epoch"] == 0
        assert payload["window_first"] == 0
        assert payload["window_last"] == 4
        assert payload["num_snapshots"] == 5
        assert payload["result_cache"]["hits"] == 1
        assert payload["result_cache"]["entries"] == 1
        assert payload["node_cache"]["entries"] > 0
        assert 0.0 <= payload["result_cache"]["hit_rate"] <= 1.0

    def test_versions(self, service_state):
        assert service_state.num_versions == 5
        assert service_state.latest_version == 4
