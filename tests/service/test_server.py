"""End-to-end tests of the live query service over its TCP protocol.

The acceptance smoke test mirrors the paper's offline evaluation: every
vector a live server returns must be bit-identical to what the offline
``WorkSharingEvaluator`` computes on the same snapshots, across
concurrent clients, cache hits, coalesced requests and epoch changes.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import faults
from repro.algorithms.registry import get_algorithm
from repro.cli import main
from repro.core.common import CommonGraphDecomposition
from repro.core.engine import WorkSharingEvaluator
from repro.resilience import RetryPolicy
from repro.service import ServiceClient, ServiceConfig, ServiceRunner

from tests.conftest import assert_values_equal
from tests.service.conftest import valid_batch

pytestmark = pytest.mark.service


@pytest.fixture
def runner(service_state):
    with ServiceRunner(service_state) as running:
        yield running


@pytest.fixture
def client(runner):
    with ServiceClient(port=runner.port) as connected:
        yield connected


def offline_values(store, weight_fn, algorithm, source, first, last):
    """The reference answer: a from-scratch offline evaluation."""
    decomposition = CommonGraphDecomposition.from_evolving(store.load())
    window = decomposition.restrict(first, last)
    result = WorkSharingEvaluator(
        window, get_algorithm(algorithm), source, weight_fn=weight_fn
    ).run()
    return result.snapshot_values


def info_json(port):
    """The health payload as ``repro info --json --connect`` reports it."""
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["info", "--json", "--connect", f"127.0.0.1:{port}"])
    assert code == 0
    return json.loads(buffer.getvalue())


class TestBasicOps:
    def test_ping(self, client):
        assert client.ping()

    def test_status_payload(self, client):
        status = client.status()
        assert status["serving"] is True
        assert status["epoch"] == 0
        assert status["num_snapshots"] == 5
        assert set(status["server"]) >= {
            "connections", "requests", "queries", "coalesced", "ingests",
            "retried", "degraded", "errors",
        }

    def test_request_id_echoed(self, client):
        response = client.request({"op": "ping", "id": 42})
        assert response["id"] == 42

    def test_shutdown_stops_server(self, service_state):
        runner = ServiceRunner(service_state).start()
        with ServiceClient(port=runner.port) as client:
            client.shutdown()
        runner._thread.join(timeout=10)
        assert not runner._thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", runner.port), timeout=1)


class TestErrors:
    def test_malformed_json_line(self, runner):
        with socket.create_connection(("127.0.0.1", runner.port)) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"{broken\n")
            handle.flush()
            response = json.loads(handle.readline())
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"

    def test_unknown_op(self, client):
        response = client.request({"op": "explode"})
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"

    def test_unknown_algorithm(self, client):
        response = client.request({"op": "query", "algorithm": "Nope",
                                   "source": 0})
        assert response["ok"] is False
        assert response["error_type"] == "AlgorithmError"

    def test_range_outside_window(self, client):
        # A request naming versions the window cannot answer is a client
        # mistake: ProtocolError, like every other bad-range rejection.
        response = client.request({"op": "query", "algorithm": "BFS",
                                   "source": 0, "first": 0, "last": 99})
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"
        assert "outside the window" in response["error"]

    def test_empty_ingest(self, client):
        response = client.request({"op": "ingest", "additions": [],
                                   "deletions": []})
        assert response["ok"] is False
        assert response["error_type"] == "ProtocolError"

    def test_errors_do_not_kill_the_connection(self, client):
        client.request({"op": "explode"})
        assert client.ping()

    def test_failed_query_counts_one_error(self, runner, client):
        """A failing query is one failure: the coalescing leader's
        shared error payload must not bump the counter a second time."""
        response = client.request({"op": "query", "algorithm": "Nope",
                                   "source": 0})
        assert response["ok"] is False
        assert runner.service.counters["errors"] == 1


class TestEndToEnd:
    def test_acceptance_smoke(self, service_store, service_state, runner,
                              service_weights):
        """The PR's acceptance scenario, in order: ingest, concurrent
        range queries bit-identical to the offline evaluator, a cache
        hit observable through ``repro info --json``, and an ingest
        that bumps the epoch and invalidates the cache."""
        endpoint = runner.port

        # -- ingest one batch through the wire ---------------------------
        batch = valid_batch(service_store, n_add=3, n_del=2)
        with ServiceClient(port=endpoint) as client:
            receipt = client.ingest(
                additions=[[int(u), int(v)]
                           for u, v in zip(*batch.additions.arrays())],
                deletions=[[int(u), int(v)]
                           for u, v in zip(*batch.deletions.arrays())],
            )
        assert receipt["version"] == 5
        assert receipt["epoch"] == 1

        # -- concurrent range queries ------------------------------------
        queries = [
            ("BFS", 0, 0, 5), ("SSSP", 0, 1, 4), ("SSWP", 3, 2, 5),
            ("SSSP", 1, 0, 3), ("BFS", 2, 3, 5),
        ]
        responses = [None] * len(queries)
        errors = []

        def issue(slot, algorithm, source, first, last):
            try:
                with ServiceClient(port=endpoint) as local:
                    responses[slot] = local.query(algorithm, source,
                                                  first, last)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=issue, args=(slot, *query))
            for slot, query in enumerate(queries)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for (algorithm, source, first, last), response in zip(queries,
                                                              responses):
            assert response is not None
            assert response["ok"] and response["outcome"] == "ok"
            expected = offline_values(service_store, service_weights,
                                      algorithm, source, first, last)
            assert len(response["values"]) == last - first + 1
            for version, (got, want) in enumerate(
                zip(response["values"], expected)
            ):
                assert_values_equal(
                    got, want,
                    f"{algorithm} from {source} on {first}..{last} "
                    f"v{first + version}",
                )

        # -- a repeat query is served from the result cache ---------------
        hits_before = info_json(endpoint)["result_cache"]["hits"]
        with ServiceClient(port=endpoint) as client:
            repeat = client.query("BFS", 0, 0, 5)
        assert repeat["from_cache"] is True
        expected = offline_values(service_store, service_weights,
                                  "BFS", 0, 0, 5)
        for got, want in zip(repeat["values"], expected):
            assert_values_equal(got, want, "cached BFS")
        health = info_json(endpoint)
        assert health["result_cache"]["hits"] == hits_before + 1
        assert health["epoch"] == 1

        # -- ingest bumps the epoch and invalidates the cache -------------
        batch = valid_batch(service_store, n_add=2, n_del=1)
        with ServiceClient(port=endpoint) as client:
            receipt = client.ingest(
                additions=[[int(u), int(v)]
                           for u, v in zip(*batch.additions.arrays())],
                deletions=[[int(u), int(v)]
                           for u, v in zip(*batch.deletions.arrays())],
            )
            assert receipt["epoch"] == 2
            fresh = client.query("BFS", 0, 0, 5)
        assert fresh["from_cache"] is False
        assert fresh["epoch"] == 2
        expected = offline_values(service_store, service_weights,
                                  "BFS", 0, 0, 5)
        for got, want in zip(fresh["values"], expected):
            assert_values_equal(got, want, "post-ingest BFS")
        assert info_json(endpoint)["result_cache"]["invalidations"] > 0


class TestCoalescing:
    def test_identical_inflight_queries_share_one_execution(
        self, service_state, monkeypatch
    ):
        """Concurrent identical queries run the planner once; followers
        receive the leader's payload flagged ``coalesced``."""
        calls = []
        original = service_state.query

        def slow_query(*args, **kwargs):
            calls.append(args)
            time.sleep(0.4)  # hold the leader so followers pile up
            return original(*args, **kwargs)

        monkeypatch.setattr(service_state, "query", slow_query)
        with ServiceRunner(service_state) as runner:
            responses = []

            def issue():
                with ServiceClient(port=runner.port) as client:
                    responses.append(client.query("SSSP", 0, 0, 4))

            threads = [threading.Thread(target=issue) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            counters = dict(runner.service.counters)
        assert len(responses) == 4
        assert len(calls) == 1, "identical in-flight queries must coalesce"
        assert counters["coalesced"] == 3
        assert sum(bool(r.get("coalesced")) for r in responses) == 3
        reference = responses[0]["values"]
        for response in responses[1:]:
            for got, want in zip(response["values"], reference):
                assert_values_equal(got, want, "coalesced answer")


class TestResilience:
    def test_transient_fault_is_retried(self, service_state):
        plan = faults.FaultPlan().fail_service(match="query:*", times=1)
        with plan.active(), ServiceRunner(service_state) as runner:
            with ServiceClient(port=runner.port) as client:
                response = client.query("BFS", 0)
            counters = dict(runner.service.counters)
        assert response["ok"] and response["outcome"] == "retried"
        assert counters["retried"] == 1
        assert counters["degraded"] == 0
        offline = service_state.offline_answer("BFS", 0, 0, 4)
        for got, want in zip(response["values"], offline.values):
            assert_values_equal(got, want, "retried BFS")

    def test_persistent_fault_degrades_to_offline_answer(self,
                                                         service_state):
        config = ServiceConfig(retry=RetryPolicy(
            max_attempts=2, base_delay=0.001, multiplier=2.0,
            max_delay=0.01, retry_on=(OSError,),
        ))
        plan = faults.FaultPlan().fail_service(match="query:*", times=100)
        with plan.active(), ServiceRunner(service_state, config) as runner:
            with ServiceClient(port=runner.port) as client:
                response = client.query("SSSP", 0)
            counters = dict(runner.service.counters)
        assert response["ok"] and response["outcome"] == "degraded"
        assert counters["degraded"] == 1
        offline = service_state.offline_answer("SSSP", 0, 0, 4)
        for got, want in zip(response["values"], offline.values):
            assert_values_equal(got, want, "degraded SSSP")

    def test_deadline_expiry_is_not_retried(self, service_state,
                                            monkeypatch):
        """A wait_for timeout must surface as DeadlineExceededError, not
        feed the retry policy (TimeoutError is an OSError subclass on
        3.11+) — retrying would race a duplicate attempt against the
        still-running executor task."""
        calls = []
        original = service_state.query

        def slow_query(*args, **kwargs):
            calls.append(args)
            time.sleep(0.5)
            return original(*args, **kwargs)

        monkeypatch.setattr(service_state, "query", slow_query)
        config = ServiceConfig(request_timeout=0.1)
        with ServiceRunner(service_state, config) as runner:
            with ServiceClient(port=runner.port) as client:
                response = client.request({"op": "query",
                                           "algorithm": "BFS",
                                           "source": 0})
            counters = dict(runner.service.counters)
        assert response["ok"] is False
        assert response["error_type"] == "DeadlineExceededError"
        assert counters["retried"] == 0
        assert counters["degraded"] == 0
        assert len(calls) == 1, "deadline expiry must not spawn duplicates"

    def test_ingest_fault_is_retried(self, service_store, service_state):
        plan = faults.FaultPlan().fail_service(match="ingest:*", times=1)
        batch = valid_batch(service_store)
        with plan.active(), ServiceRunner(service_state) as runner:
            with ServiceClient(port=runner.port) as client:
                receipt = client.ingest(
                    additions=[[int(u), int(v)]
                               for u, v in zip(*batch.additions.arrays())],
                    deletions=[[int(u), int(v)]
                               for u, v in zip(*batch.deletions.arrays())],
                )
        assert receipt["ok"] and receipt["version"] == 5
        assert service_state.epoch == 1


class TestCLIAgainstLiveServer:
    def test_query_command_renders_table(self, runner, capsys):
        code = main([
            "query", "--connect", f"127.0.0.1:{runner.port}",
            "--algorithm", "BFS", "--source", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BFS from 0" in out
        assert "version" in out

    def test_query_command_json(self, runner, capsys):
        code = main([
            "query", "--connect", f"127.0.0.1:{runner.port}",
            "--algorithm", "SSSP", "--source", "1", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["algorithm"] == "SSSP"
        assert len(payload["values"]) == 5

    def test_query_command_reports_server_errors(self, runner, capsys):
        code = main([
            "query", "--connect", f"127.0.0.1:{runner.port}",
            "--algorithm", "Nope", "--source", "0",
        ])
        assert code != 0
