"""Unit tests for the service's LRU cache and its statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import CacheStats, LRUCache


class TestCacheStats:
    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_as_dict_keys(self):
        d = CacheStats(hits=1, misses=1).as_dict()
        assert set(d) == {
            "hits", "misses", "evictions", "invalidations", "hit_rate",
        }
        assert d["hit_rate"] == pytest.approx(0.5)


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_miss_returns_none_and_counts(self):
        cache = LRUCache(4)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_overwrites_in_place(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_purge_by_predicate(self):
        cache = LRUCache(8)
        for epoch in (0, 0, 1):
            cache.put(("k", epoch, len(cache)), epoch)
        dropped = cache.purge(lambda key: key[1] == 0)
        assert dropped == 2
        assert len(cache) == 1
        assert cache.stats.invalidations == 2
        assert all(key[1] == 1 for key in cache.keys())

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_copy_in_protects_cache_from_caller_mutation(self):
        cache = LRUCache(4, copy_in=np.copy, copy_out=np.copy)
        values = np.array([1.0, 2.0])
        cache.put("v", values)
        values[0] = 99.0
        assert cache.get("v")[0] == 1.0

    def test_copy_out_protects_cache_from_reader_mutation(self):
        cache = LRUCache(4, copy_in=np.copy, copy_out=np.copy)
        cache.put("v", np.array([1.0, 2.0]))
        cache.get("v")[0] = 99.0
        assert cache.get("v")[0] == 1.0
