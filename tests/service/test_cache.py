"""Unit tests for the service's LRU cache and its statistics."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import CacheStats, LRUCache


class TestCacheStats:
    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_hit_rate(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)

    def test_as_dict_keys(self):
        d = CacheStats(hits=1, misses=1).as_dict()
        assert set(d) == {
            "hits", "misses", "evictions", "invalidations", "hit_rate",
        }
        assert d["hit_rate"] == pytest.approx(0.5)


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_miss_returns_none_and_counts(self):
        cache = LRUCache(4)
        assert cache.get("missing") is None
        assert cache.stats.misses == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_overwrites_in_place(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_purge_by_predicate(self):
        cache = LRUCache(8)
        for epoch in (0, 0, 1):
            cache.put(("k", epoch, len(cache)), epoch)
        dropped = cache.purge(lambda key: key[1] == 0)
        assert dropped == 2
        assert len(cache) == 1
        assert cache.stats.invalidations == 2
        assert all(key[1] == 1 for key in cache.keys())

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_copy_in_protects_cache_from_caller_mutation(self):
        cache = LRUCache(4, copy_in=np.copy, copy_out=np.copy)
        values = np.array([1.0, 2.0])
        cache.put("v", values)
        values[0] = 99.0
        assert cache.get("v")[0] == 1.0

    def test_copy_out_protects_cache_from_reader_mutation(self):
        cache = LRUCache(4, copy_in=np.copy, copy_out=np.copy)
        cache.put("v", np.array([1.0, 2.0]))
        cache.get("v")[0] = 99.0
        assert cache.get("v")[0] == 1.0


class TestConcurrency:
    def test_purge_races_get_and_put(self):
        """An epoch purge racing readers and writers stays consistent.

        Keys are ``(name, epoch, i)`` with a unique ``i`` per put, so an
        exact accounting invariant holds regardless of interleaving:
        every inserted entry is still cached, was LRU-evicted, or was
        purge-invalidated.  A barrier lines the three threads up each
        round so every round genuinely races.
        """
        cache = LRUCache(64)
        rounds = 200
        barrier = threading.Barrier(3)
        wrong_values = []

        def putter():
            for i in range(rounds):
                barrier.wait()
                cache.put(("k", i % 2, i), i)

        def getter():
            for i in range(rounds):
                barrier.wait()
                value = cache.get(("k", i % 2, i))
                if value is not None and value != i:
                    wrong_values.append((i, value))

        def purger():
            for _ in range(rounds):
                barrier.wait()
                cache.purge(lambda key: key[1] == 0)

        threads = [
            threading.Thread(target=fn) for fn in (putter, getter, purger)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert wrong_values == []
        stats = cache.stats
        # Only the getter looks up: one verdict per round, no losses.
        assert stats.hits + stats.misses == rounds
        # Every unique put is accounted for exactly once.
        assert rounds == len(cache) + stats.evictions + stats.invalidations
        # The last purge strictly follows the last epoch-0 put (the
        # barrier orders them), so no epoch-0 key survives.
        assert all(key[1] == 1 for key in cache.keys())

    def test_concurrent_purges_split_the_invalidations(self):
        cache = LRUCache(256)
        for i in range(100):
            cache.put(("k", i), i)
        barrier = threading.Barrier(4)
        dropped = [0] * 4

        def purge(slot):
            barrier.wait()
            dropped[slot] = cache.purge(lambda key: key[1] % 2 == 0)

        threads = [
            threading.Thread(target=purge, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Each even key is dropped by exactly one purger.
        assert sum(dropped) == 50
        assert cache.stats.invalidations == 50
        assert len(cache) == 50
        assert all(key[1] % 2 == 1 for key in cache.keys())
