"""Fixtures for the query-service tests: a small store and a live state."""

from __future__ import annotations

import pytest

from repro.evolving.delta import DeltaBatch
from repro.evolving.generator import generate_evolving_graph
from repro.evolving.store import SnapshotStore
from repro.graph.edgeset import EdgeSet, decode_edges
from repro.graph.generators import rmat_edges
from repro.graph.weights import HashWeights
from repro.service import ServiceState


def valid_batch(store, n_add: int = 2, n_del: int = 1) -> DeltaBatch:
    """A batch that is well-formed against the store's current tip.

    ``append`` is strict — additions must be absent from the tip and
    deletions present — so tests derive their edges from the tip
    instead of hard-coding pairs.
    """
    evolving = store.load()
    tip = evolving.snapshot_edges(evolving.num_snapshots - 1)
    present = set(zip(*(arr.tolist() for arr in decode_edges(tip.codes))))
    num_vertices = store.num_vertices
    additions = []
    for u in range(num_vertices):
        for v in range(num_vertices):
            if len(additions) == n_add:
                break
            if u != v and (u, v) not in present:
                additions.append((u, v))
        if len(additions) == n_add:
            break
    deletions = sorted(present)[:n_del]
    return DeltaBatch(
        additions=EdgeSet.from_pairs(additions),
        deletions=EdgeSet.from_pairs(deletions),
    )


@pytest.fixture(scope="session")
def service_evolving():
    """A 5-snapshot evolving graph, small enough for per-test rebuilds."""
    return generate_evolving_graph(
        num_vertices=64,
        base=rmat_edges(scale=6, num_edges=240, seed=5),
        num_snapshots=5,
        batch_size=16,
        readd_fraction=0.5,
        seed=11,
        name="svc",
    )


@pytest.fixture
def service_store(tmp_path, service_evolving):
    return SnapshotStore.create(tmp_path / "store", service_evolving)


@pytest.fixture
def service_weights():
    return HashWeights(max_weight=8, seed=7)


@pytest.fixture
def service_state(service_store, service_weights):
    state = ServiceState(service_store, weight_fn=service_weights)
    yield state
    state.close()
