"""Overload protection: admission control, breakers, drain, line caps.

The admission tests drive the controller directly on an event loop; the
integration tests stand up a real server with tiny capacity bounds and
deterministic injected latency, then assert the exact shed/degrade
behaviour over the wire.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro import faults
from repro.errors import (
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.resilience import Deadline, RetryPolicy
from repro.service import ServiceClient, ServiceConfig, ServiceRunner
from repro.service.admission import AdmissionController, AdmissionPolicy

from tests.conftest import assert_values_equal
from tests.service.conftest import valid_batch
from tests.service.test_server import offline_values

pytestmark = pytest.mark.service


# ------------------------------------------------------------- admission

class TestAdmissionPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_concurrent": 0},
        {"max_queue": -1},
        {"queue_timeout": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_retry_after_hint_is_half_the_queue_budget(self):
        assert AdmissionPolicy(queue_timeout=5.0).retry_after_ms() == 2500
        # Never 0: a 0ms hint reads as "retry immediately", which is
        # exactly the stampede the hint exists to prevent.
        assert AdmissionPolicy(queue_timeout=0.0).retry_after_ms() == 1


class TestAdmissionController:
    def run(self, coro):
        return asyncio.run(coro)

    def test_free_slots_admit_even_with_no_waiting_room(self):
        async def scenario():
            admission = AdmissionController(
                query=AdmissionPolicy(max_concurrent=2, max_queue=0),
            )
            async with admission.slot("query", Deadline.never()):
                async with admission.slot("query", Deadline.never()):
                    return admission.gate("query").snapshot()

        snapshot = self.run(scenario())
        assert snapshot["active"] == 2
        assert snapshot["admitted"] == 2
        assert sum(snapshot["shed"].values()) == 0

    def test_full_waiting_room_sheds_immediately(self):
        async def scenario():
            admission = AdmissionController(
                query=AdmissionPolicy(max_concurrent=1, max_queue=0,
                                      queue_timeout=5.0),
            )
            async with admission.slot("query", Deadline.never()):
                with pytest.raises(ServiceOverloadedError) as info:
                    async with admission.slot("query", Deadline.never()):
                        pass
            return admission.gate("query").snapshot(), info.value

        snapshot, error = self.run(scenario())
        assert snapshot["shed"]["queue_full"] == 1
        assert error.retry_after_ms == 2500

    def test_queue_timeout_sheds_the_waiter(self):
        async def scenario():
            admission = AdmissionController(
                query=AdmissionPolicy(max_concurrent=1, max_queue=4,
                                      queue_timeout=0.02),
            )
            async with admission.slot("query", Deadline.never()):
                with pytest.raises(ServiceOverloadedError):
                    async with admission.slot("query", Deadline.never()):
                        pass
            return admission.gate("query").snapshot()

        snapshot = self.run(scenario())
        assert snapshot["shed"]["timeout"] == 1
        assert snapshot["max_depth"] >= 1
        assert snapshot["waiting"] == 0  # the waiter was removed

    def test_request_deadline_expires_in_the_queue(self):
        # The request's own budget dying while queued is the caller's
        # deadline problem, not an overload: DeadlineExceededError, not
        # a shed.
        async def scenario():
            admission = AdmissionController(
                query=AdmissionPolicy(max_concurrent=1, max_queue=4,
                                      queue_timeout=5.0),
            )
            async with admission.slot("query", Deadline.never()):
                with pytest.raises(DeadlineExceededError):
                    async with admission.slot("query",
                                              Deadline.after(0.02)):
                        pass
            return admission.gate("query").snapshot()

        snapshot = self.run(scenario())
        assert sum(snapshot["shed"].values()) == 0

    def test_draining_sheds_with_zero_hint(self):
        async def scenario():
            admission = AdmissionController()
            admission.begin_drain()
            with pytest.raises(ServiceOverloadedError) as info:
                async with admission.slot("query", Deadline.never()):
                    pass
            return admission.snapshot(), info.value

        snapshot, error = self.run(scenario())
        assert snapshot["draining"] is True
        assert snapshot["query"]["shed"]["draining"] == 1
        assert error.retry_after_ms == 0

    def test_release_frees_the_slot_for_the_next_waiter(self):
        async def scenario():
            admission = AdmissionController(
                query=AdmissionPolicy(max_concurrent=1, max_queue=2,
                                      queue_timeout=1.0),
            )
            order = []

            async def worker(tag):
                async with admission.slot("query", Deadline.never()):
                    order.append(tag)
                    await asyncio.sleep(0.01)

            await asyncio.gather(worker("a"), worker("b"))
            return order, admission.total_shed()

        order, shed = self.run(scenario())
        assert sorted(order) == ["a", "b"]
        assert shed == 0


# -------------------------------------------------- server integration

def small_capacity_config(**overrides):
    """A config with tiny, deterministic capacity bounds."""
    defaults = dict(
        request_timeout=10.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.005,
                          multiplier=2.0, max_delay=0.02,
                          retry_on=(OSError,)),
        query_admission=AdmissionPolicy(max_concurrent=1, max_queue=0,
                                        queue_timeout=0.5),
        breaker_failure_threshold=2,
        breaker_reset_timeout=0.2,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def query_in_thread(port, source, results, **kwargs):
    def work():
        with ServiceClient(port=port, overload_retries=0) as client:
            results[source] = client.query("SSSP", source, **kwargs)

    thread = threading.Thread(target=work)
    thread.start()
    return thread


class TestOverloadShedding:
    def test_saturated_service_sheds_with_retry_hint(self, service_state):
        config = small_capacity_config()
        plan = faults.FaultPlan(seed=3)
        plan.delay_service(0.4, match="query:SSSP:0*", times=1)
        with ServiceRunner(service_state, config) as runner:
            results = {}
            with plan.active():
                slow = query_in_thread(runner.port, 0, results)
                time.sleep(0.1)  # let the slow query take the only slot
                with ServiceClient(port=runner.port,
                                   overload_retries=0) as client:
                    with pytest.raises(ServiceOverloadedError) as info:
                        client.query("SSSP", 1)
                slow.join()
            assert info.value.retry_after_ms == 250
            assert results[0]["ok"] is True
            with ServiceClient(port=runner.port) as client:
                status = client.status()
        assert status["server"]["shed"] == 1
        assert status["admission"]["query"]["shed"]["queue_full"] == 1

    def test_client_honours_the_hint_and_recovers(self, service_state):
        config = small_capacity_config()
        plan = faults.FaultPlan(seed=3)
        plan.delay_service(0.3, match="query:SSSP:0*", times=1)
        with ServiceRunner(service_state, config) as runner:
            results = {}
            with plan.active():
                slow = query_in_thread(runner.port, 0, results)
                time.sleep(0.1)
                # Shed at first, then the jittered backoff outlives the
                # slow query and the retry is admitted.
                with ServiceClient(port=runner.port, overload_retries=8,
                                   max_retry_sleep=0.1, seed=1) as client:
                    response = client.query("SSSP", 1)
                slow.join()
            assert response["ok"] is True
            with ServiceClient(port=runner.port) as client:
                status = client.status()
        assert status["server"]["shed"] >= 1

    def test_queue_timeout_sheds_a_waiting_query(self, service_state):
        config = small_capacity_config(
            query_admission=AdmissionPolicy(max_concurrent=1, max_queue=4,
                                            queue_timeout=0.05),
        )
        plan = faults.FaultPlan(seed=3)
        plan.delay_service(0.4, match="query:SSSP:0*", times=1)
        with ServiceRunner(service_state, config) as runner:
            results = {}
            with plan.active():
                slow = query_in_thread(runner.port, 0, results)
                time.sleep(0.1)
                with ServiceClient(port=runner.port,
                                   overload_retries=0) as client:
                    with pytest.raises(ServiceOverloadedError):
                        client.query("SSSP", 1)
                slow.join()
            with ServiceClient(port=runner.port) as client:
                status = client.status()
        assert status["admission"]["query"]["shed"]["timeout"] == 1

    def test_client_deadline_dies_in_the_queue(self, service_state):
        # timeout_ms smaller than the queue budget: the request's own
        # deadline expires while it waits, which is reported as a
        # deadline error, not an overload.
        config = small_capacity_config(
            query_admission=AdmissionPolicy(max_concurrent=1, max_queue=4,
                                            queue_timeout=5.0),
        )
        plan = faults.FaultPlan(seed=3)
        plan.delay_service(0.4, match="query:SSSP:0*", times=1)
        with ServiceRunner(service_state, config) as runner:
            results = {}
            with plan.active():
                slow = query_in_thread(runner.port, 0, results)
                time.sleep(0.1)
                with ServiceClient(port=runner.port) as client:
                    response = client.request({
                        "op": "query", "algorithm": "SSSP", "source": 1,
                        "timeout_ms": 50,
                    })
                slow.join()
        assert response["ok"] is False
        assert response["error_type"] == "DeadlineExceededError"
        assert "overloaded" not in response

    def test_timeout_ms_must_be_a_positive_integer(self, service_state):
        with ServiceRunner(service_state) as runner:
            with ServiceClient(port=runner.port) as client:
                for bad in (0, -5, "fast"):
                    response = client.request({
                        "op": "query", "algorithm": "SSSP", "source": 0,
                        "timeout_ms": bad,
                    })
                    assert response["ok"] is False
                    assert response["error_type"] == "ProtocolError"


class TestCircuitBreakers:
    def test_open_planner_breaker_fast_fails_to_degraded(
        self, service_store, service_state, service_weights
    ):
        config = small_capacity_config()
        plan = faults.FaultPlan(seed=5)
        plan.fail_service(match="query:*", times=999)
        with ServiceRunner(service_state, config) as runner:
            with plan.active():
                with ServiceClient(port=runner.port) as client:
                    # Two exhausted requests trip the threshold-2
                    # breaker; both still answer from the fallback.
                    for source in (0, 1):
                        response = client.query("SSSP", source)
                        assert response["outcome"] == "degraded"
                    checks_before = len(plan.events)
                    # Breaker now open: the primary path (and its fault
                    # hook) is never touched, no retries are burned.
                    response = client.query("SSSP", 2)
                    assert response["outcome"] == "degraded"
                    assert len(plan.events) == checks_before
                    status = client.status()
            assert status["server"]["breaker_fastfail"] == 1
            planner = status["breakers"]["planner"]
            assert planner["state"] == "open"
            assert planner["transitions"] == ["closed->open"]
            # The degraded answers are still bit-identical to offline.
            expected = offline_values(service_store, service_weights,
                                      "SSSP", 2, 0, 4)
            assert_values_equal(response["values"], expected)

    def test_planner_breaker_recovers_after_reset_timeout(
        self, service_state
    ):
        config = small_capacity_config()
        plan = faults.FaultPlan(seed=5)
        plan.fail_service(match="query:*", times=999)
        with ServiceRunner(service_state, config) as runner:
            with ServiceClient(port=runner.port) as client:
                with plan.active():
                    for source in (0, 1):
                        client.query("SSSP", source)
                # Fault gone, probe window reached: the next request is
                # the half-open probe; its success closes the breaker.
                time.sleep(config.breaker_reset_timeout + 0.05)
                response = client.query("SSSP", 2)
                assert response["outcome"] == "ok"
                status = client.status()
        planner = status["breakers"]["planner"]
        assert planner["state"] == "closed"
        assert planner["transitions"] == [
            "closed->open", "open->half_open", "half_open->closed",
        ]

    def test_open_store_breaker_fails_ingests_fast(self, service_state):
        config = small_capacity_config()
        plan = faults.FaultPlan(seed=5)
        plan.fail_service(match="ingest:*", times=999)
        batch = valid_batch(service_state.store)
        additions = [list(pair) for pair in batch.additions]
        with ServiceRunner(service_state, config) as runner:
            with plan.active():
                with ServiceClient(port=runner.port,
                                   overload_retries=0) as client:
                    # Ingest has no fallback: exhausted retries are an
                    # error, and threshold-2 trips the store breaker.
                    for _ in range(2):
                        response = client.request({
                            "op": "ingest", "additions": additions,
                            "deletions": [],
                        })
                        assert response["error_type"] == "RetryExhaustedError"
                    def ingest_checks():
                        return sum(1 for event in plan.events
                                   if event.startswith("ingest:"))

                    checks_before = ingest_checks()
                    response = client.request({
                        "op": "ingest", "additions": additions,
                        "deletions": [],
                    })
                    status = client.status()
                    checks_after = ingest_checks()
        assert response["ok"] is False
        assert response["error_type"] == "CircuitOpenError"
        assert response["retry_after_ms"] > 0
        assert checks_after == checks_before  # no retries burned
        assert status["breakers"]["store"]["state"] == "open"
        assert status["ingests"] == 0  # nothing was applied


class TestLifecycle:
    def test_status_reports_ready_and_health_surfaces(self, service_state):
        with ServiceRunner(service_state) as runner:
            with ServiceClient(port=runner.port) as client:
                status = client.status()
        assert status["lifecycle"] == {
            "live": True, "ready": True, "draining": False,
        }
        assert status["admission"]["query"]["max_concurrent"] == 8
        assert status["admission"]["draining"] is False
        assert set(status["breakers"]) == {"planner", "store"}
        for breaker in status["breakers"].values():
            assert breaker["state"] == "closed"
            assert breaker["consecutive_failures"] == 0

    def test_drain_finishes_inflight_work(self, service_state):
        plan = faults.FaultPlan(seed=3)
        plan.delay_service(0.3, match="query:SSSP:0*", times=1)
        runner = ServiceRunner(service_state).start()
        try:
            results = {}
            with plan.active():
                slow = query_in_thread(runner.port, 0, results)
                time.sleep(0.1)
                report = runner.drain(timeout=5.0)
                slow.join()
            assert report["drained"] is True
            assert report["abandoned_requests"] == 0
            assert report["abandoned_futures"] == 0
            # The in-flight query completed with a full answer.
            assert results[0]["ok"] is True
            assert results[0]["values"]
        finally:
            runner.stop()

    def test_drain_is_idempotent(self, service_state):
        runner = ServiceRunner(service_state).start()
        try:
            first = runner.drain(timeout=2.0)
            assert first["drained"] is True
            # A second drain returns the first report instead of
            # re-draining a stopped service.
            assert runner.service is not None
            second = asyncio.run(runner.service.drain())
            assert second["drained"] is True
        finally:
            runner.stop()


class TestLineCap:
    def test_oversized_line_is_rejected_not_buffered(self, service_state):
        config = ServiceConfig(max_line_bytes=1024)
        with ServiceRunner(service_state, config) as runner:
            with socket.create_connection(("127.0.0.1", runner.port),
                                          timeout=5) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"x" * 4096 + b"\n")
                stream.flush()
                line = stream.readline()
                assert b'"ok":false' in line
                assert b"ProtocolError" in line
                assert b"1024" in line
                # The stream cannot resync mid-line: the server hangs up.
                assert stream.readline() == b""
            # ... but the listener survives for the next client.
            with ServiceClient(port=runner.port) as client:
                assert client.ping()
