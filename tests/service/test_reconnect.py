"""Client auto-reconnect: dropped connections heal, timeouts do not."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import ServiceUnavailableError
from repro.service import ServiceConfig, ServiceRunner, ServiceState
from repro.service.client import ServiceClient

pytestmark = pytest.mark.service


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"reconnect_attempts": -1},
        {"reconnect_backoff": -0.1},
        {"overload_retries": -1},
        {"max_retry_sleep": -1.0},
    ])
    def test_negative_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServiceClient(**kwargs)


class TestReconnect:
    def test_survives_a_server_restart_on_the_same_port(
        self, service_store, service_weights
    ):
        """The client's socket dies with the old server process; the
        next request reconnects transparently and succeeds."""
        port = free_port()
        state = ServiceState(service_store, weight_fn=service_weights)
        try:
            config = ServiceConfig(port=port)
            runner = ServiceRunner(state, config).start()
            client = ServiceClient(port=port, reconnect_backoff=0.01)
            try:
                assert client.ping()
                first = client.query("SSSP", 0)
                runner.stop()
                runner = ServiceRunner(state, ServiceConfig(port=port)).start()
                # Same client object, stale socket: must heal itself.
                assert client.ping()
                again = client.query("SSSP", 0)
            finally:
                client.close()
                runner.stop()
            assert len(again["values"]) == len(first["values"])
        finally:
            state.close()

    def test_exhaustion_raises_service_unavailable(self):
        client = ServiceClient(port=free_port(), timeout=0.5,
                               reconnect_attempts=2,
                               reconnect_backoff=0.01)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.request({"op": "ping"})
        assert "3 attempt(s)" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_zero_attempts_means_no_retry(self):
        client = ServiceClient(port=free_port(), timeout=0.5,
                               reconnect_attempts=0)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.request({"op": "ping"})
        assert "1 attempt(s)" in str(excinfo.value)

    def test_timeout_is_not_retried(self):
        """A response timeout propagates: the request may still be
        executing server-side, so a blind resend could double-apply."""
        accepted = threading.Event()
        server = socket.socket()
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]
        conns = []

        def silent_server():
            conn, _ = server.accept()
            conns.append(conn)  # accept, read nothing, answer nothing
            accepted.set()

        thread = threading.Thread(target=silent_server, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=port, timeout=0.2,
                                   reconnect_attempts=5)
            with pytest.raises(TimeoutError):
                client.request({"op": "ping"})
            assert accepted.wait(5)
            # The desynchronised socket was dropped, not resent on.
            assert client._sock is None
        finally:
            for conn in conns:
                conn.close()
            server.close()
            thread.join(timeout=5)
