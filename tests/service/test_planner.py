"""The memoizing planner must match the offline evaluator bit-for-bit."""

from __future__ import annotations

import pytest

from repro.core.common import CommonGraphDecomposition
from repro.core.engine import WorkSharingEvaluator
from repro.kickstarter.engine import VertexState
from repro.service import LRUCache, MemoizingPlanner

from tests.conftest import assert_values_equal


@pytest.fixture
def decomposition(service_evolving):
    return CommonGraphDecomposition.from_evolving(service_evolving)


@pytest.fixture
def planner(weight_fn):
    cache = LRUCache(256, copy_in=VertexState.copy,
                     copy_out=VertexState.copy)
    return MemoizingPlanner(cache, weight_fn)


def offline_values(decomposition, algorithm, source, first, last, weight_fn):
    window = decomposition.restrict(first, last)
    result = WorkSharingEvaluator(
        window, algorithm, source, weight_fn=weight_fn
    ).run()
    return result.snapshot_values


class TestColdEvaluation:
    def test_matches_offline_evaluator(self, decomposition, planner,
                                       algorithm, weight_fn):
        """Every algorithm, full range, cold cache: values are identical."""
        last = decomposition.num_snapshots - 1
        answer = planner.evaluate(decomposition, algorithm, 0, 0, last,
                                  epoch=0)
        expected = offline_values(decomposition, algorithm, 0, 0, last,
                                  weight_fn)
        assert len(answer.values) == last + 1
        assert answer.node_hits == 0
        assert answer.node_misses > 0
        for version, (got, want) in enumerate(zip(answer.values, expected)):
            assert_values_equal(got, want, f"{algorithm.name} v{version}")

    def test_subrange_matches_offline(self, decomposition, planner,
                                      algorithm, weight_fn):
        answer = planner.evaluate(decomposition, algorithm, 2, 1, 3, epoch=0)
        expected = offline_values(decomposition, algorithm, 2, 1, 3,
                                  weight_fn)
        for got, want in zip(answer.values, expected):
            assert_values_equal(got, want, f"{algorithm.name} window")


class TestCrossQueryReuse:
    def test_repeat_query_hits_every_node(self, decomposition, planner,
                                          algorithm):
        last = decomposition.num_snapshots - 1
        cold = planner.evaluate(decomposition, algorithm, 0, 0, last, epoch=0)
        warm = planner.evaluate(decomposition, algorithm, 0, 0, last, epoch=0)
        assert warm.node_misses == 0
        assert warm.node_hits == cold.node_misses
        assert warm.additions_processed == 0
        for got, want in zip(warm.values, cold.values):
            assert_values_equal(got, want, "warm replay")

    def test_overlapping_range_resumes_and_stays_exact(
        self, decomposition, planner, algorithm, weight_fn
    ):
        """A second query over an overlapping range reuses interior
        states yet returns exactly the offline evaluator's values."""
        planner.evaluate(decomposition, algorithm, 0, 0, 3, epoch=0)
        warm = planner.evaluate(decomposition, algorithm, 0, 1, 3, epoch=0)
        expected = offline_values(decomposition, algorithm, 0, 1, 3,
                                  weight_fn)
        for got, want in zip(warm.values, expected):
            assert_values_equal(got, want, f"{algorithm.name} overlap")

    def test_epochs_never_share_states(self, decomposition, planner,
                                       algorithm):
        last = decomposition.num_snapshots - 1
        planner.evaluate(decomposition, algorithm, 0, 0, last, epoch=0)
        other = planner.evaluate(decomposition, algorithm, 0, 0, last,
                                 epoch=1)
        assert other.node_hits == 0

    def test_sources_never_share_states(self, decomposition, planner,
                                        algorithm):
        last = decomposition.num_snapshots - 1
        planner.evaluate(decomposition, algorithm, 0, 0, last, epoch=0)
        other = planner.evaluate(decomposition, algorithm, 1, 0, last,
                                 epoch=0)
        assert other.node_hits == 0

    def test_cached_states_are_isolated_copies(self, decomposition, planner,
                                               algorithm):
        """Mutating a returned answer must not poison the node cache."""
        last = decomposition.num_snapshots - 1
        first = planner.evaluate(decomposition, algorithm, 0, 0, last,
                                 epoch=0)
        for values in first.values:
            values[:] = -123.0
        again = planner.evaluate(decomposition, algorithm, 0, 0, last,
                                 epoch=0)
        assert not any((values == -123.0).all() for values in again.values)
