"""Wire-protocol tests: framing, validation, value encoding."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.service import protocol


class TestFraming:
    def test_roundtrip(self):
        doc = {"op": "query", "algorithm": "SSSP", "source": 3}
        line = protocol.encode_line(doc)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert protocol.decode_line(line) == doc

    def test_malformed_json(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"{not json}\n")

    def test_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"[1, 2]\n")

    def test_oversized_line(self):
        line = b"x" * (protocol.MAX_LINE_BYTES + 1)
        with pytest.raises(ProtocolError):
            protocol.decode_line(line)


class TestValidateRequest:
    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            protocol.validate_request({"op": "explode"})

    def test_missing_op(self):
        with pytest.raises(ProtocolError):
            protocol.validate_request({})

    def test_query_requires_string_algorithm(self):
        with pytest.raises(ProtocolError, match="algorithm"):
            protocol.validate_request({"op": "query", "algorithm": 3,
                                       "source": 0})

    def test_query_requires_integer_source(self):
        with pytest.raises(ProtocolError, match="source"):
            protocol.validate_request({"op": "query", "algorithm": "BFS",
                                       "source": "zero"})

    def test_query_rejects_boolean_integers(self):
        with pytest.raises(ProtocolError):
            protocol.validate_request({"op": "query", "algorithm": "BFS",
                                       "source": True})

    def test_query_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown query fields"):
            protocol.validate_request({"op": "query", "algorithm": "BFS",
                                       "source": 0, "speed": "fast"})

    def test_query_optional_range(self):
        doc = {"op": "query", "algorithm": "BFS", "source": 0}
        assert protocol.validate_request(doc) is doc
        doc = {"op": "query", "algorithm": "BFS", "source": 0,
               "first": 1, "last": 2, "id": 7}
        assert protocol.validate_request(doc) is doc

    def test_query_rejects_negative_versions(self):
        # Regression: these used to reach the server and surface as a
        # SnapshotError from deep inside the evaluator.
        for field in ("first", "last"):
            with pytest.raises(ProtocolError, match="non-negative"):
                protocol.validate_request({"op": "query",
                                           "algorithm": "BFS",
                                           "source": 0, field: -1})

    def test_query_rejects_reversed_range(self):
        with pytest.raises(ProtocolError, match="reversed"):
            protocol.validate_request({"op": "query", "algorithm": "BFS",
                                       "source": 0, "first": 5, "last": 2})

    def test_ingest_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown ingest fields"):
            protocol.validate_request({"op": "ingest", "edges": []})

    def test_temporal_is_a_known_op(self):
        assert "temporal" in protocol.OPS

    def test_temporal_wellformed(self):
        doc = {"op": "temporal", "algorithm": "SSSP", "source": 3,
               "queries": [{"mode": "point", "as_of": 1}], "id": 9}
        assert protocol.validate_request(doc) is doc

    def test_temporal_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown temporal fields"):
            protocol.validate_request({
                "op": "temporal", "algorithm": "BFS", "source": 0,
                "queries": [{"mode": "point", "as_of": 0}], "speed": "fast",
            })

    def test_temporal_rejects_non_list_queries(self):
        with pytest.raises(ProtocolError, match="non-empty list"):
            protocol.validate_request({
                "op": "temporal", "algorithm": "BFS", "source": 0,
                "queries": {"mode": "point", "as_of": 0},
            })

    def test_temporal_rejects_bad_specs(self):
        for bad in ([{"mode": "warp"}],
                    [{"mode": "timeline", "vertex": 0,
                      "first": 4, "last": 1}],
                    [{"mode": "point", "as_of": -1}]):
            with pytest.raises(ProtocolError):
                protocol.validate_request({
                    "op": "temporal", "algorithm": "BFS", "source": 0,
                    "queries": bad,
                })

    def test_simple_ops(self):
        for op in ("ping", "status", "shutdown"):
            assert protocol.validate_request({"op": op})["op"] == op


class TestIngestParsing:
    def test_parse_edge_pairs(self):
        edges = protocol.parse_edge_pairs([[0, 1], [2, 3]], "additions")
        assert len(edges) == 2

    def test_parse_edge_pairs_rejects_bad_shapes(self):
        for bad in ("nope", [[0]], [[0, 1, 2]], [[-1, 2]], [[0, "1"]],
                    [[True, 1]]):
            with pytest.raises(ProtocolError):
                protocol.parse_edge_pairs(bad, "additions")

    def test_empty_batch_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            protocol.parse_ingest_batch({"op": "ingest"})

    def test_overlapping_add_delete_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_ingest_batch({
                "op": "ingest",
                "additions": [[0, 1]],
                "deletions": [[0, 1]],
            })

    def test_wellformed_batch(self):
        batch = protocol.parse_ingest_batch({
            "op": "ingest",
            "additions": [[0, 1], [1, 2]],
            "deletions": [[3, 4]],
        })
        assert batch.size == 3


class TestValueEncoding:
    def test_infinities_become_strings(self):
        encoded = protocol.encode_values(
            [np.array([1.5, np.inf, -np.inf])]
        )
        assert encoded == [[1.5, "inf", "-inf"]]

    def test_roundtrip_exact(self):
        vectors = [
            np.array([0.0, 1.0, np.inf]),
            np.array([0.1 + 0.2, -np.inf, 1e-300]),
        ]
        decoded = protocol.decode_values(protocol.encode_values(vectors))
        assert len(decoded) == len(vectors)
        for got, want in zip(decoded, vectors):
            assert got.dtype == np.float64
            assert np.array_equal(got, want)

    @given(st.lists(
        st.lists(
            st.one_of(
                st.floats(allow_nan=False, allow_infinity=False),
                st.just(math.inf), st.just(-math.inf),
            ),
            max_size=8,
        ),
        max_size=4,
    ))
    def test_roundtrip_property(self, rows):
        vectors = [np.asarray(row, dtype=np.float64) for row in rows]
        # Full trip through JSON framing, exactly as the server sends it.
        line = protocol.encode_line(
            {"values": protocol.encode_values(vectors)}
        )
        decoded = protocol.decode_values(protocol.decode_line(line)["values"])
        for got, want in zip(decoded, vectors):
            assert np.array_equal(got, want)
