"""Deterministic chaos harness: burst load + injected latency/faults.

A storm of concurrent clients hits a deliberately under-provisioned
server while an ingester advances the graph and a seeded
:class:`~repro.faults.FaultPlan` injects latency and transient
failures.  The assertions are *conservation laws* rather than timing
expectations, so the suite is deterministic under fixed seeds:

* every request is answered or explicitly shed — shedding never hangs
  a client, and client-observed sheds equal the server's count;
* queue depth stays bounded by the admission policy;
* no ingest is lost or duplicated: receipts carry strictly
  consecutive versions;
* after the storm, answers are bit-identical to a from-scratch
  offline ``WorkSharingEvaluator`` on the final store;
* drain completes within its deadline with zero abandoned work;
* breaker transitions and shed counts surface in the metrics export.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults, obs
from repro.errors import ServiceOverloadedError
from repro.resilience import RetryPolicy
from repro.service import (
    AdmissionPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    ServiceState,
)
from repro.testing import reset_observability

from tests.conftest import assert_values_equal
from tests.service.conftest import valid_batch
from tests.service.test_server import offline_values

pytestmark = [pytest.mark.service, pytest.mark.chaos]

N_CLIENTS = 32
N_INGESTS = 4
SEED = 1337


@pytest.fixture
def obs_runtime(tmp_path):
    runtime = obs.configure(sample_rate=1.0,
                            span_sink=tmp_path / "spans.jsonl")
    yield runtime
    reset_observability()


@pytest.fixture
def chaos_state(service_store, service_weights, obs_runtime):
    state = ServiceState(service_store, weight_fn=service_weights)
    unsubscribe = state.register_metrics()
    yield state
    unsubscribe()
    state.close()


def chaos_config():
    """Deliberately tight capacity so the storm must shed."""
    return ServiceConfig(
        request_timeout=10.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.005,
                          multiplier=2.0, max_delay=0.02,
                          retry_on=(OSError,)),
        query_admission=AdmissionPolicy(max_concurrent=2, max_queue=2,
                                        queue_timeout=0.1),
        ingest_admission=AdmissionPolicy(max_concurrent=1, max_queue=8,
                                         queue_timeout=5.0),
        breaker_failure_threshold=3,
        breaker_reset_timeout=0.2,
    )


class StormClient(threading.Thread):
    """One storm participant: a single query, outcome recorded."""

    def __init__(self, port, source, offset):
        super().__init__(name=f"storm-{source}")
        self.port = port
        self.source = source
        self.offset = offset
        self.response = None
        self.shed = None
        self.error = None

    def run(self):
        time.sleep(self.offset)
        try:
            with ServiceClient(port=self.port, timeout=30,
                               overload_retries=0) as client:
                self.response = client.query("SSSP", self.source)
        except ServiceOverloadedError as exc:
            self.shed = exc
        except BaseException as exc:  # anything else fails the test
            self.error = exc


class Ingester(threading.Thread):
    """Applies N sequential batches, collecting every receipt.

    Each batch is derived from the store's tip *after* the previous
    receipt, so the chain is valid under the store's strict-append
    contract no matter how the storm interleaves.
    """

    def __init__(self, port, store, count):
        super().__init__(name="storm-ingester")
        self.port = port
        self.store = store
        self.count = count
        self.receipts = []
        self.error = None

    def run(self):
        try:
            with ServiceClient(port=self.port, timeout=30) as client:
                for _ in range(self.count):
                    batch = valid_batch(self.store, n_add=2, n_del=1)
                    receipt = client.ingest(
                        additions=[list(p) for p in batch.additions],
                        deletions=[list(p) for p in batch.deletions],
                    )
                    self.receipts.append(receipt)
        except BaseException as exc:
            self.error = exc


class TestChaosStorm:
    def test_burst_storm_conserves_every_request(
        self, service_store, service_weights, chaos_state, obs_runtime
    ):
        plan = faults.FaultPlan(seed=SEED)
        # Latency: the first 4 queries to reach the primary path hold
        # their execution slots for 150ms, forcing the burst to queue
        # and shed.  Transient faults: 2 queries and the first ingest
        # fail twice each, healed by retries.
        plan.delay_service(0.15, match="query:*", times=4)
        plan.fail_service(index=6, match="query:*", times=2)
        plan.fail_service(index=0, match="ingest:*", times=2)
        offsets = faults.burst_offsets(N_CLIENTS, spread=0.05, seed=SEED)

        config = chaos_config()
        with ServiceRunner(chaos_state, config) as runner:
            clients = [
                StormClient(runner.port, source, offset)
                for source, offset in zip(range(N_CLIENTS), offsets)
            ]
            ingester = Ingester(runner.port, service_store, N_INGESTS)
            with plan.active():
                ingester.start()
                for client in clients:
                    client.start()
                for client in clients:
                    client.join(timeout=30)
                ingester.join(timeout=30)
            # Shedding never hangs: every thread came back.
            assert not any(c.is_alive() for c in clients)
            assert not ingester.is_alive()
            assert [c for c in clients if c.error] == []
            assert ingester.error is None

            answered = [c for c in clients if c.response is not None]
            shed = [c for c in clients if c.shed is not None]
            # Conservation: every request was answered or explicitly
            # shed, and the tight capacity forced both to happen.
            assert len(answered) + len(shed) == N_CLIENTS
            assert answered and shed
            assert all(s.shed.retry_after_ms >= 0 for s in shed)

            with ServiceClient(port=runner.port) as probe:
                status = probe.status()

            # Server-side accounting agrees with what clients saw.
            assert status["server"]["shed"] == len(shed)
            assert status["server"]["queries"] == N_CLIENTS
            gate = status["admission"]["query"]
            assert sum(gate["shed"].values()) == len(shed)
            # Queue depth stayed within the admission bounds.
            policy = config.query_admission
            assert gate["max_depth"] <= policy.max_queue + policy.max_concurrent
            assert gate["waiting"] == 0 and gate["active"] == 0

            # No lost or duplicated ingest: N receipts with strictly
            # consecutive versions, all applied to the live state.
            versions = [r["version"] for r in ingester.receipts]
            assert len(versions) == N_INGESTS
            assert versions == sorted(set(versions))
            assert versions == list(range(versions[0],
                                          versions[0] + N_INGESTS))
            assert status["ingests"] == N_INGESTS
            assert status["poisoned"] is False

            # Post-storm answers are bit-identical to a from-scratch
            # offline evaluation of the final store.
            last = status["num_snapshots"] - 1
            for algorithm, source in (("SSSP", 0), ("BFS", 3)):
                with ServiceClient(port=runner.port) as probe:
                    live = probe.query(algorithm, source)
                expected = offline_values(
                    service_store, service_weights, algorithm, source,
                    0, last,
                )
                assert_values_equal(live["values"], expected)

            # Shed counts are visible in the metrics export.
            export = obs_runtime.registry.render_prometheus()
            shed_samples = [
                line for line in export.splitlines()
                if line.startswith("repro_admission_shed_total{")
            ]
            assert shed_samples
            total = sum(
                float(line.rsplit(" ", 1)[1]) for line in shed_samples
            )
            assert total == len(shed)

            # Graceful exit: drain lands within its deadline with zero
            # abandoned work, then reports not-ready.
            report = runner.drain(timeout=5.0)
            assert report["drained"] is True
            assert report["abandoned_requests"] == 0
            assert report["abandoned_futures"] == 0

    def test_breaker_storm_degrades_and_recovers(
        self, service_store, service_weights, chaos_state, obs_runtime
    ):
        plan = faults.FaultPlan(seed=SEED)
        plan.fail_service(match="query:*", times=9999)
        offsets = faults.burst_offsets(8, spread=0.02, seed=SEED)

        config = chaos_config()
        # A long reset window: the breaker stays open from the storm
        # until this test explicitly probes the fast-fail path below.
        config.breaker_reset_timeout = 1.0
        with ServiceRunner(chaos_state, config) as runner:
            clients = [
                StormClient(runner.port, source, offset)
                for source, offset in zip(range(8), offsets)
            ]
            with plan.active():
                for client in clients:
                    client.start()
                for client in clients:
                    client.join(timeout=30)
            assert [c for c in clients if c.error] == []
            answered = [c for c in clients if c.response is not None]
            assert answered

            # The breaker tripped; inside the reset window even a
            # fault-free request short-circuits to the fallback without
            # touching the primary path.  (Probed immediately after the
            # storm, well inside the 1s reset window.)
            with ServiceClient(port=runner.port) as probe:
                fastfail = probe.query("SSSP", 0)
                status = probe.status()
            assert fastfail["outcome"] == "degraded"
            planner = status["breakers"]["planner"]
            assert planner["state"] == "open"
            assert planner["transitions"][0] == "closed->open"
            assert status["server"]["breaker_fastfail"] >= 1

            # Every answered request fell back to the offline evaluator
            # (primary path is permanently poisoned) — and the answers
            # are still bit-identical to the reference.
            assert all(c.response["outcome"] == "degraded"
                       for c in answered)
            expected = {}
            for client in answered:
                source = client.source
                if source not in expected:
                    expected[source] = offline_values(
                        service_store, service_weights, "SSSP", source,
                        0, 4,
                    )
                assert_values_equal(client.response["values"],
                                    expected[source])

            # Fault cleared + reset window elapsed: the probe heals the
            # breaker and the primary path serves again.
            time.sleep(config.breaker_reset_timeout + 0.05)
            with ServiceClient(port=runner.port) as probe:
                recovered = probe.query("SSSP", 0)
                status = probe.status()
            assert recovered["outcome"] == "ok"
            assert status["breakers"]["planner"]["state"] == "closed"
            assert status["breakers"]["planner"]["transitions"][-2:] == [
                "open->half_open", "half_open->closed",
            ]

            # The open/half_open/closed walk is visible in metrics.
            export = obs_runtime.registry.render_prometheus()
            assert 'repro_breaker_transitions_total{breaker="planner",to="open"}' in export
            assert 'repro_breaker_transitions_total{breaker="planner",to="closed"} 1' in export
            assert 'repro_breaker_state{breaker="planner"} 0' in export
