"""End-to-end observability of the live service.

The tentpole acceptance scenario: with ``repro.obs`` configured, every
service query produces exactly one trace whose spans nest server →
planner → schedule edges → per-hop kernels, task outcomes and cache
statistics surface in the Prometheus export, and the ``status`` payload
reports the runtime's health.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import read_spans
from repro.service import ServiceClient, ServiceRunner, ServiceState
from repro.testing import reset_observability

from tests.service.conftest import valid_batch

pytestmark = [pytest.mark.service, pytest.mark.obs]


@pytest.fixture
def obs_runtime(tmp_path):
    runtime = obs.configure(
        sample_rate=1.0, span_sink=tmp_path / "spans.jsonl"
    )
    yield runtime
    reset_observability()


@pytest.fixture
def obs_state(service_store, service_weights, obs_runtime):
    state = ServiceState(service_store, weight_fn=service_weights)
    unsubscribe = state.register_metrics()
    yield state
    unsubscribe()
    state.close()


@pytest.fixture
def runner(obs_state):
    with ServiceRunner(obs_state) as running:
        yield running


@pytest.fixture
def client(runner):
    with ServiceClient(port=runner.port) as connected:
        yield connected


def trace_spans(runtime, trace_id):
    return [
        span for span in runtime.tracer.recent()
        if span.trace_id == trace_id
    ]


class TestQueryTraces:
    def test_one_nested_trace_per_query(self, client, obs_runtime, tmp_path):
        response = client.query("BFS", source=0)
        trace_id = response["trace_id"]
        spans = trace_spans(obs_runtime, trace_id)
        names = {span.name for span in spans}
        # Server → planner → schedule edges → per-hop kernels, one trace.
        assert {
            "server.query", "planner.evaluate", "planner.root",
            "kernel.static_compute", "planner.edge",
            "kernel.incremental_additions",
        } <= names
        by_id = {span.span_id: span for span in spans}
        (root,) = [span for span in spans if span.parent_id is None]
        assert root.name == "server.query"
        assert root.attributes["outcome"] == "ok"
        for span in spans:
            if span is not root:
                assert span.parent_id in by_id  # fully connected tree
        # The planner evaluation runs under the server span even though
        # it executes on an executor thread.
        (evaluate,) = [s for s in spans if s.name == "planner.evaluate"]
        assert by_id[evaluate.parent_id].name == "server.query"
        # Every span also reached the JSONL sink.
        exported, _ = read_spans(tmp_path / "spans.jsonl")
        assert {
            doc["span_id"] for doc in exported
            if doc["trace_id"] == trace_id
        } == set(by_id)

    def test_cached_query_is_a_single_hit_span(self, client, obs_runtime):
        first = client.query("BFS", source=0)
        second = client.query("BFS", source=0)
        assert second["from_cache"] is True
        assert second["trace_id"] != first["trace_id"]
        spans = trace_spans(obs_runtime, second["trace_id"])
        assert [span.name for span in spans] == ["server.query"]
        assert spans[0].attributes["result_cache"] == "hit"

    def test_distinct_queries_get_distinct_traces(self, client, obs_runtime):
        first = client.query("BFS", source=0)
        second = client.query("SSSP", source=1)
        assert first["trace_id"] != second["trace_id"]
        for response in (first, second):
            assert trace_spans(obs_runtime, response["trace_id"])


class TestMetricsFlow:
    def test_task_outcomes_reach_the_counter(self, client, obs_runtime):
        client.query("BFS", source=0)
        outcomes = obs_runtime.registry.get("repro_task_outcomes_total")
        ok = outcomes.labels(component="service", status="ok")
        assert ok.value >= 1.0

    def test_prometheus_export_covers_the_acceptance_surface(
        self, client, obs_runtime
    ):
        client.query("BFS", source=0)
        client.query("BFS", source=0)  # cache hit
        text = obs_runtime.registry.render_prometheus()
        lines = dict(
            line.rsplit(" ", 1)
            for line in text.splitlines()
            if line and not line.startswith("#")
        )
        outcome_key = (
            'repro_task_outcomes_total{component="service",status="ok"}'
        )
        assert float(lines[outcome_key]) >= 2.0
        assert float(lines['repro_requests_total{op="query"}']) == 2.0
        # The scrape-time collector refreshed the cache gauges: one hit,
        # one miss on the result cache.
        assert float(lines['repro_cache_hit_rate{cache="result"}']) == 0.5
        assert float(lines['repro_cache_hits{cache="result"}']) == 1.0
        assert float(lines['repro_cache_misses{cache="result"}']) == 1.0
        assert float(lines['repro_cache_entries{cache="result"}']) == 1.0
        assert "repro_query_seconds_bucket" in text

    def test_ingest_updates_store_and_state_metrics(
        self, client, obs_runtime, service_store
    ):
        batch = valid_batch(service_store, n_add=2, n_del=1)
        client.ingest(
            additions=[[int(u), int(v)]
                       for u, v in zip(*batch.additions.arrays())],
            deletions=[[int(u), int(v)]
                       for u, v in zip(*batch.deletions.arrays())],
        )
        registry = obs_runtime.registry
        appends = registry.get("repro_store_appends_total").default()
        assert appends.value == 1.0
        requests = registry.get("repro_requests_total")
        assert requests.labels(op="ingest").value == 1.0
        snapshot = registry.snapshot()  # runs the state collector
        assert snapshot["repro_epoch"]["series"][0]["value"] == 1.0
        assert snapshot["repro_ingests"]["series"][0]["value"] == 1.0
        assert snapshot["repro_poisoned"]["series"][0]["value"] == 0.0
        names = {
            span.name for span in obs_runtime.tracer.recent()
        }
        assert {"server.ingest", "store.append", "state.extend"} <= names

    def test_status_payload_reports_the_runtime(self, client):
        status = client.status()
        description = status["observability"]
        assert description["enabled"] is True
        assert description["sample_rate"] == 1.0
        assert description["metric_families"] > 0


class TestDisabledService:
    def test_service_runs_clean_without_a_runtime(
        self, service_store, service_weights
    ):
        reset_observability()
        state = ServiceState(service_store, weight_fn=service_weights)
        unsubscribe = state.register_metrics()  # no-op while disabled
        try:
            with ServiceRunner(state) as running:
                with ServiceClient(port=running.port) as client:
                    response = client.query("BFS", source=0)
                    assert "trace_id" not in response
                    assert client.status()["observability"] == {
                        "enabled": False
                    }
        finally:
            unsubscribe()
            state.close()
