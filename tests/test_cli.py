"""End-to-end tests of the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.evolving.store import SnapshotStore


@pytest.fixture
def store_dir(tmp_path):
    path = tmp_path / "store"
    code = main([
        "generate", str(path), "--scale", "8", "--edges", "1500",
        "--snapshots", "5", "--batch-size", "40", "--seed", "3",
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_creates_store(self, store_dir):
        store = SnapshotStore(store_dir)
        assert store.num_snapshots == 5
        assert store.num_vertices == 256

    def test_named_dataset(self, tmp_path, capsys):
        path = tmp_path / "lj"
        code = main([
            "generate", str(path), "--dataset", "LJ", "--edge-scale", "0.02",
            "--snapshots", "3", "--batch-size", "10",
        ])
        assert code == 0
        assert SnapshotStore(path).name == "LJ"


class TestInfo:
    def test_prints_summary(self, store_dir, capsys):
        assert main(["info", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "snapshots" in out
        assert "common graph edges" in out
        assert "direct-hop additions" in out


class TestEvaluate:
    def test_full_range(self, store_dir, capsys):
        code = main([
            "evaluate", str(store_dir), "--algorithm", "BFS", "--source", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BFS from 0 on versions 0..4" in out
        assert "additions streamed" in out

    def test_version_window_and_out(self, store_dir, tmp_path, capsys):
        out_path = tmp_path / "values.npz"
        code = main([
            "evaluate", str(store_dir), "--algorithm", "SSSP",
            "--first", "1", "--last", "3", "--strategy", "direct-hop",
            "--out", str(out_path),
        ])
        assert code == 0
        with np.load(out_path) as data:
            assert set(data.files) == {"version_1", "version_2", "version_3"}
            assert data["version_1"].shape == (256,)

    def test_strategies_agree_via_cli(self, store_dir, tmp_path):
        outs = []
        for strategy in ("direct-hop", "work-sharing"):
            out_path = tmp_path / f"{strategy}.npz"
            main([
                "evaluate", str(store_dir), "--algorithm", "SSWP",
                "--strategy", strategy, "--out", str(out_path),
            ])
            with np.load(out_path) as data:
                outs.append({k: data[k] for k in data.files})
        assert outs[0].keys() == outs[1].keys()
        for key in outs[0]:
            assert np.array_equal(outs[0][key], outs[1][key])


class TestInfoDetailed:
    def test_structural_summary(self, store_dir, capsys):
        assert main(["info", str(store_dir), "--detailed"]) == 0
        out = capsys.readouterr().out
        assert "base snapshot structure" in out
        assert "weak components" in out
        assert "degree histogram" in out


class TestTrend:
    def test_builtin_metrics(self, store_dir, capsys):
        code = main([
            "trend", str(store_dir), "--algorithm", "BFS",
            "--metrics", "reach", "mean",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BFS trends" in out
        assert "reach" in out and "mean" in out

    def test_vertex_metric_and_chart(self, store_dir, capsys):
        code = main([
            "trend", str(store_dir), "--metrics", "vertex:3", "--chart",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "vertex_3" in out
        assert "* vertex_3" in out  # chart legend

    def test_unknown_metric_errors(self, store_dir, capsys):
        code = main(["trend", str(store_dir), "--metrics", "entropy"])
        assert code == 2
        assert "unknown metric" in capsys.readouterr().err

    def test_window(self, store_dir, capsys):
        code = main([
            "trend", str(store_dir), "--first", "1", "--last", "3",
            "--metrics", "reach",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "\n1 " in out and "\n3 " in out
        assert "\n0 " not in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


class TestInfoJson:
    def test_machine_readable_summary(self, store_dir, capsys):
        import json

        assert main(["info", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_snapshots"] == 5
        assert payload["num_vertices"] == 256
        assert payload["common_edges"] > 0
        assert 0.0 <= payload["common_share_of_base"] <= 1.0
        assert payload["direct_hop_additions"] >= 0
        assert payload["storage_edges"] <= payload["snapshot_storage_edges"]

    def test_requires_store_or_connect(self, capsys):
        assert main(["info"]) == 2
        assert "required" in capsys.readouterr().err
