"""The temporal verb end to end: client → server → state → engine.

Covers the acceptance criteria: answers bit-identical to brute-force
per-snapshot offline recomputation, coalescing observable through the
``repro_temporal_*`` metrics (a batch touches the Triangular Grid once
per merged range), epoch behaviour across ingests, the degraded
fallback under injected faults, and clean rejections for malformed or
out-of-window requests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults, obs
from repro.errors import ProtocolError, ServiceError
from repro.evolving.version_control import VersionController
from repro.resilience import RetryPolicy
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    ServiceState,
)
from repro.testing import reset_observability

# The service fixtures live next to the service suite; re-exporting
# them here makes this file runnable under `-m temporal` alone.
from tests.service.conftest import (  # noqa: F401
    service_evolving,
    service_state,
    service_store,
    service_weights,
    valid_batch,
)
from tests.temporal.conftest import brute_matrix

pytestmark = [pytest.mark.temporal, pytest.mark.service]


@pytest.fixture
def runner(service_state):
    with ServiceRunner(service_state) as running:
        yield running


@pytest.fixture
def client(runner):
    with ServiceClient(port=runner.port) as connected:
        yield connected


def offline_controller(service_store, service_weights):
    """An independent brute-force oracle over the same store."""
    return VersionController(service_store.load(), weight_fn=service_weights)


class TestBitIdentical:
    def test_all_modes_match_brute_force(self, client, service_store,
                                         service_weights):
        controller = offline_controller(service_store, service_weights)
        n = controller.num_versions
        matrix = brute_matrix(controller, "SSSP", 3, 0, n - 1)
        response = client.temporal("SSSP", 3, [
            {"mode": "point", "as_of": 2},
            {"mode": "timeline", "vertex": 10},
            {"mode": "aggregate", "agg": "mean"},
            {"mode": "aggregate", "agg": "first_reachable"},
            {"mode": "aggregate", "agg": "top_volatile", "k": 5},
            {"mode": "diff", "a": 0, "b": n - 1},
            {"mode": "rollup", "vertex": 10, "agg": "max", "width": 2},
        ])
        assert response["ok"] and response["outcome"] == "ok"
        point, timeline, mean, first_reach, volatile, diff, rollup = (
            response["results"]
        )
        np.testing.assert_array_equal(point["values"], matrix[2])
        np.testing.assert_array_equal(timeline["values"], matrix[:, 10])
        np.testing.assert_array_equal(mean["values"], matrix.mean(axis=0))
        reach = matrix != np.inf
        expected_first = reach.argmax(axis=0).astype(np.int64)
        expected_first[~reach.any(axis=0)] = -1
        np.testing.assert_array_equal(first_reach["values"], expected_first)
        counts = (matrix[1:] != matrix[:-1]).sum(axis=0)
        vertices = np.arange(counts.size)
        order = np.lexsort((vertices, -counts))[:5]
        np.testing.assert_array_equal(volatile["vertices"], vertices[order])
        np.testing.assert_array_equal(volatile["counts"], counts[order])
        changed = matrix[0] != matrix[-1]
        delta = np.zeros(matrix.shape[1])
        delta[changed] = matrix[-1][changed] - matrix[0][changed]
        np.testing.assert_array_equal(diff["delta"], delta)
        windows = np.lib.stride_tricks.sliding_window_view(matrix[:, 10], 2)
        np.testing.assert_array_equal(rollup["values"], windows.max(axis=1))

    def test_temporal_point_matches_query_op(self, client):
        point = client.temporal("BFS", 0, {"mode": "point", "as_of": 3})
        query = client.query("BFS", 0, first=3, last=3)
        np.testing.assert_array_equal(
            point["results"][0]["values"], query["values"][0]
        )

    def test_degraded_offline_answers_are_identical(self, service_state):
        specs_docs = [
            {"mode": "aggregate", "agg": "mean"},
            {"mode": "diff", "a": 0, "b": 4},
        ]
        online = None
        with ServiceRunner(service_state) as runner:
            with ServiceClient(port=runner.port) as connected:
                online = connected.temporal("SSSP", 0, specs_docs)
        from repro.temporal import parse_specs

        offline = service_state.temporal_offline(
            "SSSP", 0, parse_specs(specs_docs)
        )
        for got, want in zip(online["results"], offline.results):
            np.testing.assert_array_equal(
                got["values" if "values" in got else "delta"],
                want["values" if "values" in want else "delta"],
            )


class TestCoalescingObservable:
    @pytest.fixture
    def obs_runtime(self):
        runtime = obs.configure(sample_rate=1.0)
        yield runtime
        reset_observability()

    def test_batch_scans_once_per_merged_range(self, obs_runtime,
                                               service_store,
                                               service_weights):
        state = ServiceState(service_store, weight_fn=service_weights)
        try:
            with ServiceRunner(state) as runner:
                with ServiceClient(port=runner.port) as connected:
                    response = connected.temporal("SSSP", 0, [
                        {"mode": "point", "as_of": 0},
                        {"mode": "point", "as_of": 1},
                        {"mode": "point", "as_of": 2},   # 0..2 coalesces
                        {"mode": "diff", "a": 0, "b": 4},  # 4 alone; gap at 3
                    ])
        finally:
            state.close()
        assert response["ranges_evaluated"] == 2
        assert response["snapshots_scanned"] == 4  # 0,1,2 + 4 — never 3
        scanned = obs_runtime.registry.get(
            "repro_temporal_snapshots_scanned_total"
        ).default()
        assert scanned.value == 4.0
        modes = obs_runtime.registry.get("repro_temporal_queries_total")
        assert modes.labels(mode="point").value == 3.0
        assert modes.labels(mode="diff").value == 1.0
        widths = obs_runtime.registry.get("repro_temporal_range_width")
        histogram = widths.default()
        assert histogram.count == 2  # one observation per merged range
        assert histogram.sum == 4.0  # widths 3 + 1

    def test_temporal_spans_nest_under_server(self, obs_runtime,
                                              service_store,
                                              service_weights):
        state = ServiceState(service_store, weight_fn=service_weights)
        try:
            with ServiceRunner(state) as runner:
                with ServiceClient(port=runner.port) as connected:
                    response = connected.temporal(
                        "BFS", 0, {"mode": "aggregate", "agg": "min"}
                    )
        finally:
            state.close()
        spans = [span for span in obs_runtime.tracer.recent()
                 if span.trace_id == response["trace_id"]]
        names = {span.name for span in spans}
        assert {"server.temporal", "temporal.plan", "temporal.evaluate",
                "temporal.aggregate"} <= names
        (root,) = [span for span in spans if span.parent_id is None]
        assert root.name == "server.temporal"


class TestEpochAndIngest:
    def test_ingest_bumps_epoch_and_window(self, client, service_store):
        before = client.temporal("BFS", 0, {"mode": "aggregate",
                                            "agg": "min"})
        batch = valid_batch(service_store)
        client.ingest(
            additions=[list(pair) for pair in batch.additions],
            deletions=[list(pair) for pair in batch.deletions],
        )
        after = client.temporal("BFS", 0, {"mode": "aggregate",
                                           "agg": "min"})
        assert after["epoch"] == before["epoch"] + 1
        assert after["window_last"] == before["window_last"] + 1

    def test_new_version_queryable_as_point(self, client, service_store,
                                            service_weights):
        batch = valid_batch(service_store)
        receipt = client.ingest(
            additions=[list(pair) for pair in batch.additions],
            deletions=[list(pair) for pair in batch.deletions],
        )
        version = receipt["version"]
        response = client.temporal("SSSP", 0,
                                   {"mode": "point", "as_of": version})
        controller = offline_controller(service_store, service_weights)
        expected = brute_matrix(controller, "SSSP", 0, version, version)[0]
        np.testing.assert_array_equal(
            response["results"][0]["values"], expected
        )

    def test_as_of_timestamp_resolves_ingest_order(self, service_store,
                                                   service_weights):
        clock = [100.0]
        state = ServiceState(service_store, weight_fn=service_weights,
                             time_fn=lambda: clock[0])
        try:
            with ServiceRunner(state) as runner:
                with ServiceClient(port=runner.port) as connected:
                    clock[0] = 200.0
                    batch = valid_batch(service_store)
                    receipt = connected.ingest(
                        additions=[list(p) for p in batch.additions],
                        deletions=[list(p) for p in batch.deletions],
                    )
                    old = connected.temporal(
                        "BFS", 0, {"mode": "point", "as_of_timestamp": 150.0}
                    )
                    new = connected.temporal(
                        "BFS", 0, {"mode": "point", "as_of_timestamp": 250.0}
                    )
        finally:
            state.close()
        # At t=150 only the pre-existing snapshots (stamped 100) exist;
        # the ingested version (stamped 200) answers the later question.
        assert old["results"][0]["version"] == receipt["version"] - 1
        assert new["results"][0]["version"] == receipt["version"]


class TestFailureHandling:
    def test_degraded_under_persistent_faults(self, service_state,
                                              service_store,
                                              service_weights):
        config = ServiceConfig(retry=RetryPolicy(
            max_attempts=2, base_delay=0.001, multiplier=2.0,
            max_delay=0.01, retry_on=(OSError,),
        ))
        plan = faults.FaultPlan().fail_service(match="temporal:*",
                                               times=100)
        with plan.active(), ServiceRunner(service_state, config) as runner:
            with ServiceClient(port=runner.port) as connected:
                response = connected.temporal(
                    "SSSP", 0, {"mode": "aggregate", "agg": "mean"}
                )
            counters = dict(runner.service.counters)
        assert response["ok"] and response["outcome"] == "degraded"
        assert counters["degraded"] == 1 and counters["temporals"] == 1
        controller = offline_controller(service_store, service_weights)
        matrix = brute_matrix(controller, "SSSP", 0, 0,
                              controller.num_versions - 1)
        np.testing.assert_array_equal(
            response["results"][0]["values"], matrix.mean(axis=0)
        )

    def test_transient_fault_is_retried(self, service_state):
        plan = faults.FaultPlan().fail_service(match="temporal:*", times=1)
        with plan.active(), ServiceRunner(service_state) as runner:
            with ServiceClient(port=runner.port) as connected:
                response = connected.temporal(
                    "BFS", 0, {"mode": "point", "as_of": 0}
                )
            counters = dict(runner.service.counters)
        assert response["ok"] and response["outcome"] == "retried"
        assert counters["retried"] == 1

    def test_out_of_window_range_is_protocol_error(self, client):
        with pytest.raises(ServiceError, match="ProtocolError"):
            client.request_ok({
                "op": "temporal", "algorithm": "BFS", "source": 0,
                "queries": [{"mode": "point", "as_of": 99}],
            })

    def test_malformed_spec_rejected_before_send(self, client):
        with pytest.raises(ProtocolError, match="reversed"):
            client.temporal("BFS", 0, {
                "mode": "timeline", "vertex": 0, "first": 3, "last": 1,
            })

    def test_unknown_algorithm_is_clean_error(self, client):
        with pytest.raises(ServiceError):
            client.temporal("PageRank", 0, {"mode": "point", "as_of": 0})
