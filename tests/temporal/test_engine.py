"""The temporal engine against brute-force per-snapshot recomputation.

Every aggregate the engine produces must be bit-identical to stacking
independently recomputed snapshots and applying the plain formula —
the Triangular Grid sharing and the range coalescing are performance
properties, never allowed to change a single bit of the answer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.temporal import TemporalEngine, coalesce_ranges, parse_specs
from repro.temporal import aggregates

from tests.temporal.conftest import brute_matrix

pytestmark = pytest.mark.temporal


class TestCoalesceRanges:
    def test_empty(self):
        assert coalesce_ranges([]) == []

    def test_disjoint_stay_separate(self):
        assert coalesce_ranges([(2, 5), (7, 8)]) == [(2, 5), (7, 8)]

    def test_overlap_merges(self):
        assert coalesce_ranges([(2, 5), (4, 8)]) == [(2, 8)]

    def test_adjacent_merges(self):
        assert coalesce_ranges([(2, 5), (6, 8)]) == [(2, 8)]

    def test_containment_collapses(self):
        assert coalesce_ranges([(2, 9), (4, 5), (9, 9)]) == [(2, 9)]

    def test_unsorted_input(self):
        assert coalesce_ranges([(7, 8), (0, 1), (2, 5), (1, 2)]) == [
            (0, 5), (7, 8)
        ]

    def test_never_bridges_a_gap(self):
        merged = coalesce_ranges([(0, 2), (4, 6)])
        covered = {v for first, last in merged
                   for v in range(first, last + 1)}
        assert 3 not in covered


@pytest.fixture
def engine(controller):
    return TemporalEngine.for_controller(controller, "SSSP", 0)


class TestAgainstBruteForce:
    def test_point(self, engine, controller):
        for version in range(controller.num_versions):
            (result,) = engine.run(
                parse_specs([{"mode": "point", "as_of": version}])
            ).results
            expected = brute_matrix(controller, "SSSP", 0, version,
                                    version)[0]
            np.testing.assert_array_equal(result["values"], expected)

    def test_timeline(self, engine, controller):
        matrix = brute_matrix(controller, "SSSP", 0, 1, 6)
        (result,) = engine.run(parse_specs([
            {"mode": "timeline", "vertex": 5, "first": 1, "last": 6},
        ])).results
        np.testing.assert_array_equal(result["values"], matrix[:, 5])

    @pytest.mark.parametrize("agg", ["min", "max", "mean", "argmin",
                                     "argmax", "first_reachable",
                                     "changed_count"])
    def test_vector_aggregates(self, engine, controller, agg):
        first, last = 1, 6
        matrix = brute_matrix(controller, "SSSP", 0, first, last)
        (result,) = engine.run(parse_specs([
            {"mode": "aggregate", "agg": agg, "first": first, "last": last},
        ])).results
        if agg in ("min", "max", "mean"):
            kernel = getattr(aggregates, f"temporal_{agg}")
            expected = kernel(matrix)
        elif agg in ("argmin", "argmax"):
            kernel = getattr(aggregates, f"temporal_{agg}")
            expected = kernel(matrix) + first
        elif agg == "first_reachable":
            expected = aggregates.first_reachable(matrix, float("inf"))
            expected[expected >= 0] += first
        else:
            expected = aggregates.changed_count(matrix)
        np.testing.assert_array_equal(result["values"], expected)

    def test_top_volatile(self, engine, controller):
        matrix = brute_matrix(controller, "SSSP", 0, 0, 7)
        (result,) = engine.run(parse_specs([
            {"mode": "aggregate", "agg": "top_volatile", "k": 6},
        ])).results
        vertices, counts = aggregates.top_volatile(matrix, 6)
        np.testing.assert_array_equal(result["vertices"], vertices)
        np.testing.assert_array_equal(result["counts"], counts)

    def test_diff(self, engine, controller):
        a, b = 1, 6
        matrix = brute_matrix(controller, "SSSP", 0, a, b)
        values_a, values_b = matrix[0], matrix[-1]
        (result,) = engine.run(
            parse_specs([{"mode": "diff", "a": a, "b": b}])
        ).results
        np.testing.assert_array_equal(
            result["delta"], aggregates.value_delta(values_a, values_b)
        )
        reach_a = values_a != float("inf")
        reach_b = values_b != float("inf")
        assert result["became_reachable"] == int((~reach_a & reach_b).sum())
        assert result["became_unreachable"] == int((reach_a & ~reach_b).sum())
        assert result["value_changed"] == int((values_a != values_b).sum())
        # Structural churn agrees with VersionController.diff.
        batch = controller.diff(a, b)
        assert result["edge_additions"] == len(batch.additions)
        assert result["edge_deletions"] == len(batch.deletions)

    @pytest.mark.parametrize("agg", ["min", "max", "mean", "changed_count"])
    def test_rollup(self, engine, controller, agg):
        first, last, width = 0, 7, 3
        matrix = brute_matrix(controller, "SSSP", 0, first, last)
        series = matrix[:, 4]
        (result,) = engine.run(parse_specs([
            {"mode": "rollup", "vertex": 4, "agg": agg, "width": width,
             "first": first, "last": last},
        ])).results
        expected = []
        for start in range(last - first - width + 2):
            window = series[start:start + width]
            if agg == "min":
                expected.append(window.min())
            elif agg == "max":
                expected.append(window.max())
            elif agg == "mean":
                expected.append(window.mean())
            else:
                expected.append(float(
                    (window[1:] != window[:-1]).sum()
                ))
        assert result["window_firsts"] == list(
            range(first, first + len(expected))
        )
        np.testing.assert_array_equal(
            result["values"], np.asarray(expected, dtype=np.float64)
        )

    def test_every_algorithm(self, controller, algorithm):
        engine = TemporalEngine.for_controller(controller, algorithm, 0)
        matrix = brute_matrix(controller, algorithm, 0, 0,
                              controller.num_versions - 1)
        (result,) = engine.run(
            parse_specs([{"mode": "aggregate", "agg": "min"}])
        ).results
        np.testing.assert_array_equal(result["values"], matrix.min(axis=0))


class TestAccounting:
    def test_one_descent_per_coalesced_range(self, engine):
        answer = engine.run(parse_specs([
            {"mode": "point", "as_of": 0},
            {"mode": "timeline", "vertex": 3, "first": 0, "last": 3},
            {"mode": "point", "as_of": 2},       # inside the first range
            {"mode": "diff", "a": 6, "b": 7},    # gap at 4..5, then 6..7
        ]))
        # 0..3 swallows both points; 6,6 and 7,7 coalesce to 6..7; the
        # gap 4..5 is never scanned.
        assert answer.ranges_evaluated == 2
        assert answer.snapshots_scanned == 6

    def test_whole_window_batch_is_one_descent(self, engine, controller):
        specs = [{"mode": "point", "as_of": v}
                 for v in range(controller.num_versions)]
        answer = engine.run(parse_specs(specs))
        assert answer.ranges_evaluated == 1
        assert answer.snapshots_scanned == controller.num_versions

    def test_evaluator_called_once_per_range(self, controller):
        calls = []
        inner = TemporalEngine.for_controller(controller, "BFS", 0)

        def counting(first, last):
            calls.append((first, last))
            return inner.evaluate_range(first, last)

        engine = TemporalEngine(
            algorithm=inner.algorithm, source=0,
            num_vertices=inner.num_vertices,
            window_first=0, window_last=controller.num_versions - 1,
            evaluate_range=counting,
        )
        engine.run(parse_specs([
            {"mode": "point", "as_of": 1},
            {"mode": "timeline", "vertex": 2, "first": 0, "last": 2},
            {"mode": "point", "as_of": 6},
        ]))
        assert calls == [(0, 2), (6, 6)]


class TestResolution:
    def test_window_defaults_fill_in(self, engine, controller):
        (result,) = engine.run(
            parse_specs([{"mode": "aggregate", "agg": "max"}])
        ).results
        assert result["first"] == 0
        assert result["last"] == controller.num_versions - 1

    def test_out_of_window_rejected(self, engine, controller):
        n = controller.num_versions
        for spec in (
            {"mode": "point", "as_of": n},
            {"mode": "timeline", "vertex": 0, "first": 0, "last": n},
            {"mode": "diff", "a": 0, "b": n + 3},
        ):
            with pytest.raises(ProtocolError, match="outside the window"):
                engine.run(parse_specs([spec]))

    def test_vertex_bounds_checked(self, engine, controller):
        with pytest.raises(ProtocolError, match="vertex"):
            engine.run(parse_specs([
                {"mode": "timeline",
                 "vertex": controller.decomposition.num_vertices},
            ]))

    def test_rollup_width_capped_by_span(self, engine):
        with pytest.raises(ProtocolError, match="width"):
            engine.run(parse_specs([
                {"mode": "rollup", "vertex": 0, "agg": "min",
                 "width": 4, "first": 0, "last": 2},
            ]))

    def test_empty_batch_rejected(self, engine):
        with pytest.raises(ProtocolError, match="at least one spec"):
            engine.run([])

    def test_bad_source_rejected(self, controller):
        with pytest.raises(ProtocolError, match="source"):
            TemporalEngine.for_controller(controller, "BFS", 10_000)


class TestTimestampResolution:
    def test_latest_at_or_before(self, controller):
        times = {v: 100.0 + 10 * v for v in range(controller.num_versions)}
        engine = TemporalEngine.for_controller(
            controller, "BFS", 0, version_times=times
        )
        (result,) = engine.run(parse_specs([
            {"mode": "point", "as_of_timestamp": 125.0},
        ])).results
        assert result["version"] == 2  # stamped 120, latest <= 125
        assert result["as_of_timestamp"] == 125.0

    def test_exact_stamp_is_inclusive(self, controller):
        times = {v: 100.0 + 10 * v for v in range(controller.num_versions)}
        engine = TemporalEngine.for_controller(
            controller, "BFS", 0, version_times=times
        )
        (result,) = engine.run(parse_specs([
            {"mode": "point", "as_of_timestamp": 130.0},
        ])).results
        assert result["version"] == 3

    def test_before_history_rejected(self, controller):
        engine = TemporalEngine.for_controller(
            controller, "BFS", 0, version_times={0: 100.0}
        )
        with pytest.raises(ProtocolError, match="no snapshot ingested"):
            engine.run(parse_specs([
                {"mode": "point", "as_of_timestamp": 99.0},
            ]))

    def test_no_timestamps_rejected(self, engine):
        with pytest.raises(ProtocolError, match="no ingest timestamps"):
            engine.run(parse_specs([
                {"mode": "point", "as_of_timestamp": 1.0},
            ]))


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_random_windows_match_brute_force(controller, data):
    """Any random window of any mode agrees with brute force."""
    n = controller.num_versions
    first = data.draw(st.integers(0, n - 1), label="first")
    last = data.draw(st.integers(first, n - 1), label="last")
    agg = data.draw(st.sampled_from(
        ["min", "max", "mean", "changed_count"]), label="agg")
    engine = TemporalEngine.for_controller(controller, "SSSP", 0)
    matrix = brute_matrix(controller, "SSSP", 0, first, last)
    answer = engine.run(parse_specs([
        {"mode": "aggregate", "agg": agg, "first": first, "last": last},
        {"mode": "timeline", "vertex": 1, "first": first, "last": last},
    ]))
    agg_result, timeline = answer.results
    kernel = (aggregates.changed_count if agg == "changed_count"
              else getattr(aggregates, f"temporal_{agg}"))
    np.testing.assert_array_equal(agg_result["values"], kernel(matrix))
    np.testing.assert_array_equal(timeline["values"], matrix[:, 1])
    assert answer.ranges_evaluated == 1
    assert answer.snapshots_scanned == last - first + 1
