"""The aggregate kernels against scalar reference loops.

Each vectorised kernel is checked bit-identically against the obvious
per-vertex Python loop, on hand-built matrices and on hypothesis-drawn
random ones (including infinities, the unreached-vertex marker).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.temporal import aggregates

pytestmark = pytest.mark.temporal

INF = float("inf")


def matrices(max_snapshots: int = 6, max_vertices: int = 8):
    """Random (S, N) float matrices with a healthy dose of infs."""
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_snapshots),
                        st.integers(1, max_vertices)),
        elements=st.one_of(
            st.just(INF),
            st.integers(0, 12).map(float),
        ),
    )


MATRIX = np.array([
    [0.0, 2.0, INF, INF],
    [0.0, 1.0, 5.0, INF],
    [0.0, 3.0, 5.0, INF],
])


class TestHandBuilt:
    def test_min_max_mean(self):
        assert aggregates.temporal_min(MATRIX).tolist() == [0, 1, 5, INF]
        assert aggregates.temporal_max(MATRIX).tolist() == [0, 3, INF, INF]
        mean = aggregates.temporal_mean(MATRIX)
        assert mean[0] == 0.0 and mean[1] == 2.0
        assert math.isinf(mean[2]) and math.isinf(mean[3])

    def test_arg_extrema_first_occurrence(self):
        assert aggregates.temporal_argmin(MATRIX).tolist() == [0, 1, 1, 0]
        assert aggregates.temporal_argmax(MATRIX).tolist() == [0, 2, 0, 0]

    def test_first_reachable(self):
        rows = aggregates.first_reachable(MATRIX, INF)
        assert rows.tolist() == [0, 0, 1, -1]
        assert rows.dtype == np.int64

    def test_changed_count_inf_is_stable(self):
        # inf != inf is False: a never-reached vertex never "changes".
        counts = aggregates.changed_count(MATRIX)
        assert counts.tolist() == [0, 2, 1, 0]

    def test_changed_count_single_row(self):
        assert aggregates.changed_count(MATRIX[:1]).tolist() == [0, 0, 0, 0]

    def test_top_volatile_ordering(self):
        vertices, counts = aggregates.top_volatile(MATRIX, 3)
        # count desc, vertex asc on ties — a total order.
        assert vertices.tolist() == [1, 2, 0]
        assert counts.tolist() == [2, 1, 0]

    def test_top_volatile_k_larger_than_n(self):
        vertices, counts = aggregates.top_volatile(MATRIX, 99)
        assert vertices.size == MATRIX.shape[1]

    def test_top_volatile_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            aggregates.top_volatile(MATRIX, 0)

    def test_value_delta_no_nan_at_infinity(self):
        a = np.array([1.0, INF, INF, 2.0])
        b = np.array([1.0, INF, 3.0, INF])
        delta = aggregates.value_delta(a, b)
        assert delta[0] == 0.0
        assert delta[1] == 0.0  # inf == inf: no change, not nan
        assert delta[2] == -INF
        assert delta[3] == INF
        assert not np.isnan(delta).any()

    def test_value_delta_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes differ"):
            aggregates.value_delta(np.zeros(3), np.zeros(4))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="snapshots, vertices"):
            aggregates.temporal_min(np.zeros(4))


@settings(max_examples=60, deadline=None)
@given(matrices())
def test_kernels_match_scalar_loops(matrix):
    snapshots, vertices = matrix.shape
    for v in range(vertices):
        column = [matrix[s, v] for s in range(snapshots)]
        assert aggregates.temporal_min(matrix)[v] == min(column)
        assert aggregates.temporal_max(matrix)[v] == max(column)
        assert aggregates.temporal_argmin(matrix)[v] == column.index(
            min(column))
        assert aggregates.temporal_argmax(matrix)[v] == column.index(
            max(column))
        reached = [s for s, value in enumerate(column)
                   if value != INF]
        assert aggregates.first_reachable(matrix, INF)[v] == (
            reached[0] if reached else -1)
        changes = sum(1 for s in range(1, snapshots)
                      if column[s] != column[s - 1])
        assert aggregates.changed_count(matrix)[v] == changes


@settings(max_examples=40, deadline=None)
@given(matrices(), st.integers(1, 10))
def test_top_volatile_is_a_total_order(matrix, k):
    vertices, counts = aggregates.top_volatile(matrix, k)
    full_counts = aggregates.changed_count(matrix)
    assert vertices.size == min(k, matrix.shape[1])
    # Ordered by count desc, vertex asc; values match changed_count.
    pairs = list(zip((-counts).tolist(), vertices.tolist()))
    assert pairs == sorted(pairs)
    for vertex, count in zip(vertices, counts):
        assert full_counts[vertex] == count
    # Nothing outside the selection beats anything inside it.
    if vertices.size < matrix.shape[1]:
        cutoff = counts.min()
        outside = np.setdiff1d(np.arange(matrix.shape[1]), vertices)
        assert full_counts[outside].max(initial=0) <= cutoff
