"""Structural validation of temporal specs (the plan IR)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.temporal.plan import (
    DEFAULT_TOP_K,
    TemporalSpec,
    compile_plan,
    parse_spec,
    parse_specs,
)

pytestmark = pytest.mark.temporal


class TestParseSpec:
    def test_point_by_version(self):
        spec = parse_spec({"mode": "point", "as_of": 3})
        assert spec.mode == "point" and spec.as_of == 3
        assert spec.as_of_timestamp is None

    def test_point_by_timestamp(self):
        spec = parse_spec({"mode": "point", "as_of_timestamp": 12.5})
        assert spec.as_of is None and spec.as_of_timestamp == 12.5

    def test_point_needs_exactly_one_selector(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_spec({"mode": "point"})
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_spec({"mode": "point", "as_of": 1,
                        "as_of_timestamp": 2.0})

    def test_unknown_mode(self):
        with pytest.raises(ProtocolError, match="unknown temporal mode"):
            parse_spec({"mode": "rewind"})

    def test_unknown_fields_rejected_per_mode(self):
        with pytest.raises(ProtocolError, match="unknown fields"):
            parse_spec({"mode": "timeline", "vertex": 1, "width": 2})

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_spec(["mode", "point"])

    def test_timeline_requires_vertex(self):
        with pytest.raises(ProtocolError, match="vertex"):
            parse_spec({"mode": "timeline"})

    def test_integer_fields_reject_bool_and_str(self):
        with pytest.raises(ProtocolError, match="integer"):
            parse_spec({"mode": "timeline", "vertex": True})
        with pytest.raises(ProtocolError, match="integer"):
            parse_spec({"mode": "point", "as_of": "3"})

    def test_negative_versions_rejected(self):
        with pytest.raises(ProtocolError, match=">= 0"):
            parse_spec({"mode": "point", "as_of": -1})
        with pytest.raises(ProtocolError, match=">= 0"):
            parse_spec({"mode": "timeline", "vertex": 0, "first": -2})

    def test_reversed_range_rejected(self):
        with pytest.raises(ProtocolError, match="reversed"):
            parse_spec({"mode": "timeline", "vertex": 0,
                        "first": 5, "last": 2})

    def test_aggregate_vocabulary(self):
        spec = parse_spec({"mode": "aggregate", "agg": "mean"})
        assert spec.agg == "mean" and spec.k is None
        with pytest.raises(ProtocolError, match="unknown aggregate"):
            parse_spec({"mode": "aggregate", "agg": "median"})

    def test_k_only_with_top_volatile(self):
        with pytest.raises(ProtocolError, match="top_volatile"):
            parse_spec({"mode": "aggregate", "agg": "min", "k": 3})
        spec = parse_spec({"mode": "aggregate", "agg": "top_volatile"})
        assert spec.k == DEFAULT_TOP_K
        assert parse_spec({"mode": "aggregate", "agg": "top_volatile",
                           "k": 4}).k == 4
        with pytest.raises(ProtocolError, match=">= 1"):
            parse_spec({"mode": "aggregate", "agg": "top_volatile", "k": 0})

    def test_diff_requires_both_endpoints(self):
        spec = parse_spec({"mode": "diff", "a": 1, "b": 4})
        assert (spec.a, spec.b) == (1, 4)
        with pytest.raises(ProtocolError, match="'b'"):
            parse_spec({"mode": "diff", "a": 1})

    def test_rollup_vocabulary(self):
        spec = parse_spec({"mode": "rollup", "vertex": 2, "agg": "max",
                           "width": 3})
        assert spec.width == 3
        with pytest.raises(ProtocolError, match="rollup aggregate"):
            parse_spec({"mode": "rollup", "vertex": 2,
                        "agg": "top_volatile", "width": 3})
        with pytest.raises(ProtocolError, match=">= 1"):
            parse_spec({"mode": "rollup", "vertex": 2, "agg": "min",
                        "width": 0})

    def test_to_doc_roundtrip(self):
        docs = [
            {"mode": "point", "as_of": 3},
            {"mode": "timeline", "vertex": 7, "first": 2, "last": 9},
            {"mode": "aggregate", "agg": "top_volatile", "k": 5},
            {"mode": "diff", "a": 2, "b": 7},
            {"mode": "rollup", "agg": "mean", "vertex": 1, "width": 2},
        ]
        for doc in docs:
            spec = parse_spec(doc)
            assert parse_spec(spec.to_doc()) == spec


class TestParseSpecs:
    def test_empty_and_non_list_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty list"):
            parse_specs([])
        with pytest.raises(ProtocolError, match="non-empty list"):
            parse_specs({"mode": "point", "as_of": 1})

    def test_batch(self):
        specs = parse_specs([{"mode": "point", "as_of": 1},
                             {"mode": "diff", "a": 0, "b": 1}])
        assert [s.mode for s in specs] == ["point", "diff"]


class TestCompilePlan:
    def test_plan_carries_target(self):
        plan = compile_plan("SSSP", 3, [{"mode": "point", "as_of": 0}])
        assert plan.algorithm == "SSSP" and plan.source == 3
        assert plan.specs == (TemporalSpec(mode="point", as_of=0),)

    def test_bad_target_rejected(self):
        with pytest.raises(ProtocolError, match="algorithm"):
            compile_plan(7, 3, [{"mode": "point", "as_of": 0}])
        with pytest.raises(ProtocolError, match="source"):
            compile_plan("SSSP", -1, [{"mode": "point", "as_of": 0}])
