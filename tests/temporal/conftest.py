"""Fixtures for the temporal suite: a small history + brute force.

The correctness oracle for every temporal aggregate is *brute force*:
evaluate each snapshot of the range independently through the offline
evaluator (no Triangular Grid sharing, no caches), stack the value
vectors into a matrix, and reduce with the plain formula.  Each test
asserts the engine's answer is **bit-identical** to that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.evolving.generator import generate_evolving_graph
from repro.evolving.version_control import VersionController
from repro.graph.generators import rmat_edges
from repro.graph.weights import HashWeights


@pytest.fixture(scope="session")
def temporal_weights():
    return HashWeights(max_weight=8, seed=7)


@pytest.fixture(scope="session")
def temporal_evolving():
    """An 8-snapshot history, small enough for brute-force oracles."""
    return generate_evolving_graph(
        num_vertices=64,
        base=rmat_edges(scale=6, num_edges=180, seed=9),
        num_snapshots=8,
        batch_size=14,
        readd_fraction=0.5,
        seed=21,
        name="temporal",
    )


@pytest.fixture(scope="session")
def controller(temporal_evolving, temporal_weights):
    return VersionController(temporal_evolving, weight_fn=temporal_weights)


def brute_matrix(controller, algorithm, source, first, last):
    """Per-snapshot *independent* recomputation, stacked to ``(S, N)``.

    Every version is evaluated on its own — a one-snapshot window
    through the offline evaluator — so no work sharing, memoization or
    coalescing can leak into the oracle.
    """
    alg = (get_algorithm(algorithm) if isinstance(algorithm, str)
           else algorithm)
    rows = []
    for version in range(first, last + 1):
        result = controller.evaluate(alg, source, first=version,
                                     last=version)
        rows.append(np.asarray(result.snapshot_values[0], dtype=np.float64))
    return np.stack(rows)
