"""Size-asymmetric EdgeSet operations (the binary-search fast paths).

The general algebra laws are property-tested in ``test_edgeset.py`` on
small, similar-sized operands.  These tests specifically drive the
asymmetric branches: a small batch against a multi-thousand-edge set,
which is the hot path of the evolving-graph pipeline.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.edgeset import EdgeSet, encode_edges
from repro.graph.generators import erdos_renyi_edges

BIG = erdos_renyi_edges(256, 8000, seed=13)


def naive(op, a, b):
    sa, sb = set(a), set(b)
    return {"union": sa | sb, "difference": sa - sb, "intersection": sa & sb}[op]


small_sets = st.lists(
    st.tuples(st.integers(0, 255), st.integers(0, 255)).filter(lambda p: p[0] != p[1]),
    min_size=0, max_size=12, unique=True,
).map(EdgeSet.from_pairs)


@settings(max_examples=30, deadline=None)
@given(small_sets)
def test_union_small_into_big(small):
    assert set(BIG | small) == naive("union", BIG, small)
    assert set(small | BIG) == naive("union", BIG, small)


@settings(max_examples=30, deadline=None)
@given(small_sets)
def test_difference_asymmetric(small):
    assert set(BIG - small) == naive("difference", BIG, small)
    assert set(small - BIG) == naive("difference", small, BIG)


@settings(max_examples=30, deadline=None)
@given(small_sets)
def test_intersection_asymmetric(small):
    want = naive("intersection", BIG, small)
    assert set(BIG & small) == want
    assert set(small & BIG) == want


def test_union_with_fully_contained_small_returns_equivalent_set():
    picks = np.random.default_rng(1).choice(BIG.codes.size, size=5, replace=False)
    subset = EdgeSet(BIG.codes[picks])
    assert (BIG | subset) == BIG


def test_union_preserves_sortedness_with_insertions():
    small = EdgeSet(encode_edges(np.array([0, 255]), np.array([255, 0])))
    small = small - BIG  # keep only genuinely new codes
    merged = BIG | small
    codes = merged.codes
    assert np.all(np.diff(codes) > 0)  # strictly sorted, no duplicates
    assert len(merged) == len(BIG) + len(small)


def test_difference_result_is_view_safe():
    """Results share no mutable state with operands."""
    small = EdgeSet.from_pairs([(0, 1)])
    out = BIG - small
    before = BIG.codes.copy()
    # Mutating the result's buffer must not corrupt the operand.
    out.codes.flags.writeable and out.codes.fill(0)  # only if writeable
    assert np.array_equal(BIG.codes, before)
