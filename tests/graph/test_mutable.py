"""Tests for repro.graph.mutable (row-local copy-on-write mutation)."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph.edgeset import EdgeSet
from repro.graph.mutable import MutableGraph
from repro.graph.weights import HashWeights
from tests.strategies import edge_pairs

WF = HashWeights(max_weight=9, seed=8)


def make(pairs, n):
    return MutableGraph.from_edge_set(EdgeSet.from_pairs(pairs), n, weight_fn=WF)


class TestMutation:
    def test_add_batch(self):
        g = make([(0, 1)], 4)
        g.add_batch(EdgeSet.from_pairs([(1, 2), (2, 3)]))
        assert g.num_edges == 3
        assert set(g.edge_set()) == {(0, 1), (1, 2), (2, 3)}

    def test_delete_batch(self):
        g = make([(0, 1), (1, 2), (2, 3)], 4)
        g.delete_batch(EdgeSet.from_pairs([(1, 2)]))
        assert g.num_edges == 2
        assert set(g.edge_set()) == {(0, 1), (2, 3)}

    def test_delete_previously_added(self):
        g = make([(0, 1)], 4)
        g.add_batch(EdgeSet.from_pairs([(1, 2)]))
        g.delete_batch(EdgeSet.from_pairs([(1, 2)]))
        assert set(g.edge_set()) == {(0, 1)}

    def test_delete_missing_edge_raises(self):
        g = make([(0, 1)], 3)
        with pytest.raises(GraphError, match="not present"):
            g.delete_batch(EdgeSet.from_pairs([(1, 2)]))

    def test_add_out_of_range(self):
        g = make([(0, 1)], 2)
        with pytest.raises(GraphError):
            g.add_batch(EdgeSet.from_pairs([(0, 5)]))

    def test_empty_batches(self):
        g = make([(0, 1)], 2)
        g.add_batch(EdgeSet.empty())
        g.delete_batch(EdgeSet.empty())
        assert g.num_edges == 1

    def test_weights_stable_across_mutation(self):
        """An edge keeps its deterministic weight after row rewrites."""
        g = make([(0, 1), (0, 2), (1, 2)], 4)
        _, w_before = g.neighbors(0)
        g.add_batch(EdgeSet.from_pairs([(0, 3)]))
        g.delete_batch(EdgeSet.from_pairs([(0, 2)]))
        targets, weights = g.neighbors(0)
        order = np.argsort(targets)
        assert targets[order].tolist() == [1, 3]
        # weight of (0, 1) unchanged
        assert weights[order][0] == w_before[0]

    @given(edge_pairs(max_edges=20), edge_pairs(max_edges=10))
    def test_add_then_delete_roundtrip(self, base, extra):
        n1, base_pairs = base
        n2, extra_pairs = extra
        n = max(n1, n2)
        base_set = EdgeSet.from_pairs(base_pairs)
        extra_set = EdgeSet.from_pairs(extra_pairs) - base_set
        g = MutableGraph.from_edge_set(base_set, n, weight_fn=WF)
        g.add_batch(extra_set)
        assert g.edge_set() == base_set | extra_set
        g.delete_batch(extra_set)
        assert g.edge_set() == base_set
        assert g.num_edges == len(base_set)


class TestEngineProtocol:
    def test_gather_mixes_clean_and_dirty_rows(self):
        g = make([(0, 1), (2, 3)], 4)
        g.add_batch(EdgeSet.from_pairs([(0, 2)]))  # row 0 becomes dirty
        src, dst, _ = g.gather(np.array([0, 2]))
        assert sorted(zip(src.tolist(), dst.tolist())) == [(0, 1), (0, 2), (2, 3)]

    def test_gather_empty_frontier(self):
        g = make([(0, 1)], 3)
        s, d, w = g.gather(np.array([], dtype=np.int64))
        assert s.size == d.size == w.size == 0

    def test_neighbors_reflects_mutation(self):
        g = make([(0, 1)], 4)
        g.add_batch(EdgeSet.from_pairs([(0, 3)]))
        targets, weights = g.neighbors(0)
        assert sorted(targets.tolist()) == [1, 3]
        assert weights.size == 2

    def test_gather_in_gives_in_edges(self):
        g = make([(0, 2), (1, 2)], 4)
        g.add_batch(EdgeSet.from_pairs([(3, 2)]))
        origins, targets, _ = g.gather_in(np.array([2]))
        assert sorted(origins.tolist()) == [0, 1, 3]
        assert targets.tolist() == [2, 2, 2]

    def test_gather_in_after_delete(self):
        g = make([(0, 2), (1, 2)], 3)
        g.delete_batch(EdgeSet.from_pairs([(0, 2)]))
        origins, _, _ = g.gather_in(np.array([2]))
        assert origins.tolist() == [1]

    def test_gather_matches_snapshot_csr(self):
        g = make([(0, 1), (1, 2), (2, 0)], 3)
        g.add_batch(EdgeSet.from_pairs([(0, 2)]))
        g.delete_batch(EdgeSet.from_pairs([(1, 2)]))
        snap = g.snapshot_csr()
        assert snap.edge_set() == g.edge_set()
        s1, d1, w1 = g.gather(np.arange(3))
        s2, d2, w2 = snap.gather(np.arange(3))
        assert sorted(zip(s1, d1, w1)) == sorted(zip(s2, d2, w2))


class TestCosts:
    def test_counters_accumulate(self):
        g = make([(0, 1), (1, 2), (2, 0)], 3)
        g.add_batch(EdgeSet.from_pairs([(0, 2)]))
        g.delete_batch(EdgeSet.from_pairs([(1, 2)]))
        assert g.costs.add.calls == 1
        assert g.costs.delete.calls == 1
        assert g.costs.add_seconds > 0
        assert g.costs.delete_seconds > 0
        assert g.costs.elements_moved_add > 0
        assert g.costs.elements_moved_delete > 0

    def test_costs_reset(self):
        g = make([(0, 1)], 2)
        g.add_batch(EdgeSet.from_pairs([(1, 0)]))
        g.costs.reset()
        assert g.costs.add_seconds == 0.0
        assert g.costs.elements_moved_add == 0

    def test_deletion_moves_exceed_addition_moves(self):
        """The Figure 1 (bottom) asymmetry: a deletion scans + compacts
        two rows; an addition only appends to them."""
        pairs = [(i % 50, (i * 7 + 1) % 50) for i in range(400)]
        batch = EdgeSet.from_pairs([(0, 49)])
        adder = make(pairs, 50)
        adder.add_batch(batch)
        deleter = make(pairs + [(0, 49)], 50)
        deleter.delete_batch(batch)
        assert deleter.costs.elements_moved_delete > adder.costs.elements_moved_add

    def test_mutation_cost_scales_with_batch_not_graph(self):
        """Row-local mutation: a 1-edge delete moves ~2 rows' worth of
        elements, not the whole graph."""
        pairs = [(i % 50, (i * 7 + 1) % 50) for i in range(400)]
        g = make(pairs + [(0, 49)], 50)
        g.delete_batch(EdgeSet.from_pairs([(0, 49)]))
        out_deg = sum(1 for u, _ in pairs if u == 0) + 1
        in_deg = sum(1 for _, v in pairs if v == 49) + 1
        assert g.costs.elements_moved_delete <= 2 * (out_deg + in_deg)
