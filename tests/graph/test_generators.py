"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    DATASETS,
    erdos_renyi_edges,
    generate_dataset,
    rmat_edges,
)


class TestRmat:
    def test_exact_edge_count(self):
        es = rmat_edges(scale=6, num_edges=300, seed=1)
        assert len(es) == 300

    def test_vertex_range(self):
        es = rmat_edges(scale=5, num_edges=100, seed=2)
        assert es.max_vertex() < 32

    def test_no_self_loops_by_default(self):
        es = rmat_edges(scale=5, num_edges=200, seed=3)
        assert all(u != v for u, v in es)

    def test_deterministic(self):
        a = rmat_edges(scale=6, num_edges=250, seed=9)
        b = rmat_edges(scale=6, num_edges=250, seed=9)
        assert a == b

    def test_seed_matters(self):
        a = rmat_edges(scale=6, num_edges=250, seed=1)
        b = rmat_edges(scale=6, num_edges=250, seed=2)
        assert a != b

    def test_degree_skew(self):
        """RMAT should be much more skewed than uniform random."""
        es = rmat_edges(scale=9, num_edges=4000, seed=4)
        src, _ = es.arrays()
        degrees = np.bincount(src, minlength=512)
        er = erdos_renyi_edges(512, 4000, seed=4)
        er_degrees = np.bincount(er.arrays()[0], minlength=512)
        assert degrees.max() > 2 * er_degrees.max()

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            rmat_edges(scale=2, num_edges=100, seed=0)

    def test_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat_edges(scale=4, num_edges=10, a=0.5, b=0.4, c=0.3)

    def test_bad_scale(self):
        with pytest.raises(GraphError):
            rmat_edges(scale=0, num_edges=1)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        es = erdos_renyi_edges(64, 500, seed=1)
        assert len(es) == 500

    def test_range_and_loops(self):
        es = erdos_renyi_edges(32, 300, seed=2)
        assert es.max_vertex() < 32
        assert all(u != v for u, v in es)

    def test_saturation_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi_edges(3, 100)


class TestDatasets:
    def test_catalogue_shape(self):
        assert set(DATASETS) == {"LJ", "DL", "WEN", "TTW"}
        # Relative size ordering matches the paper's Table 2.
        sizes = [DATASETS[k].num_edges for k in ("LJ", "DL", "WEN", "TTW")]
        assert sizes == sorted(sizes)
        for spec in DATASETS.values():
            assert spec.num_vertices == 1 << spec.scale
            assert spec.avg_degree > 1
            assert spec.paper_edges // spec.num_edges == 1000

    def test_generate_scaled(self):
        es = generate_dataset("LJ", edge_scale=0.01)
        assert len(es) == DATASETS["LJ"].num_edges // 100

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            generate_dataset("nope")
