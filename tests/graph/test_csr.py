"""Tests for repro.graph.csr."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import HashWeights
from tests.strategies import edge_pairs


def build(pairs, n, **kwargs):
    src = np.array([u for u, _ in pairs], dtype=np.int64)
    dst = np.array([v for _, v in pairs], dtype=np.int64)
    return CSRGraph.from_edges(src, dst, n, **kwargs)


class TestConstruction:
    def test_basic_shape(self):
        g = build([(0, 1), (0, 2), (2, 1)], 3)
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.out_degree(0) == 2
        assert g.out_degree(1) == 0
        assert g.out_degree(2) == 1

    def test_empty_graph(self):
        g = CSRGraph.empty(4)
        assert g.num_edges == 0
        assert g.degrees().tolist() == [0, 0, 0, 0]
        s, d, w = g.gather(np.array([0, 1, 2, 3]))
        assert s.size == d.size == w.size == 0

    def test_from_edge_set(self):
        es = EdgeSet.from_pairs([(0, 1), (1, 2)])
        g = CSRGraph.from_edge_set(es, 3)
        assert g.edge_set() == es

    def test_explicit_weights_follow_reorder(self):
        # Edges given out of source order; weights must stay attached.
        g = build([(1, 0), (0, 2)], 3, weights=np.array([5.0, 7.0]))
        targets, weights = g.neighbors(1)
        assert targets.tolist() == [0]
        assert weights.tolist() == [5.0]
        targets, weights = g.neighbors(0)
        assert weights.tolist() == [7.0]

    def test_weight_fn(self):
        fn = HashWeights(max_weight=9, seed=2)
        g = build([(0, 1), (2, 0)], 3, weight_fn=fn)
        s, d, w = g.edge_arrays()
        assert np.array_equal(w, fn(s, d))

    def test_weights_and_weight_fn_conflict(self):
        with pytest.raises(GraphError):
            build([(0, 1)], 2, weights=np.array([1.0]), weight_fn=HashWeights())

    def test_source_out_of_range(self):
        with pytest.raises(GraphError):
            build([(5, 0)], 3)

    def test_target_out_of_range(self):
        with pytest.raises(GraphError):
            build([(0, 5)], 3)

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(2, np.array([0, 2]), np.array([0]), np.array([1.0]))

    def test_ragged_weights_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(
                2, np.array([0, 1, 1]), np.array([1]), np.array([1.0, 2.0])
            )


class TestGather:
    def test_gather_matches_neighbors(self):
        pairs = [(0, 1), (0, 2), (1, 2), (2, 0), (2, 1)]
        g = build(pairs, 3, weight_fn=HashWeights(5, 1))
        src, dst, w = g.gather(np.array([0, 2]))
        expected = sorted(
            [(u, v) for u, v in pairs if u in (0, 2)]
        )
        assert sorted(zip(src.tolist(), dst.tolist())) == expected
        # Weights agree with per-vertex views.
        for u in (0, 2):
            targets, weights = g.neighbors(u)
            mask = src == u
            assert sorted(dst[mask].tolist()) == sorted(targets.tolist())

    def test_gather_empty_frontier(self):
        g = build([(0, 1)], 2)
        s, d, w = g.gather(np.array([], dtype=np.int64))
        assert s.size == 0

    def test_gather_isolated_vertices(self):
        g = build([(0, 1)], 4)
        s, d, _ = g.gather(np.array([2, 3]))
        assert s.size == 0

    @given(edge_pairs(max_edges=30))
    def test_gather_full_frontier_is_all_edges(self, ab):
        n, pairs = ab
        g = build(pairs, n)
        src, dst, _ = g.gather(np.arange(n))
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(pairs)


class TestDerived:
    def test_transpose_reverses_edges(self):
        g = build([(0, 1), (1, 2)], 3, weight_fn=HashWeights(9, 0))
        t = g.transpose()
        assert set(t.edge_set()) == {(1, 0), (2, 1)}
        # Weights preserved per original edge.
        s, d, w = g.edge_arrays()
        ts, td, tw = t.edge_arrays()
        orig = {(u, v): x for u, v, x in zip(s, d, w)}
        for u, v, x in zip(ts, td, tw):
            assert orig[(v, u)] == x

    def test_double_transpose_identity(self):
        g = build([(0, 1), (0, 2), (2, 1)], 3, weight_fn=HashWeights(7, 3))
        tt = g.transpose().transpose()
        assert g.edge_set() == tt.edge_set()

    def test_sorted_copy_equivalent(self):
        g = build([(2, 1), (2, 0), (0, 2)], 3, weight_fn=HashWeights(7, 3))
        sc = g.sorted_copy()
        assert sc.edge_set() == g.edge_set()
        targets, _ = sc.neighbors(2)
        assert targets.tolist() == sorted(targets.tolist())

    def test_equality(self):
        a = build([(0, 1)], 2)
        b = build([(0, 1)], 2)
        c = build([(1, 0)], 2)
        assert a == b
        assert a != c
        assert a != "x"

    def test_repr(self):
        assert "V=3" in repr(build([(0, 1)], 3))
