"""Tests for repro.graph.weights."""

import numpy as np
import pytest

from repro.graph.weights import HashWeights, UnitWeights, default_weights


class TestUnitWeights:
    def test_all_ones(self):
        w = UnitWeights()(np.array([0, 1, 2]), np.array([1, 2, 3]))
        assert w.tolist() == [1.0, 1.0, 1.0]
        assert w.dtype == np.float64

    def test_empty(self):
        w = UnitWeights()(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert w.size == 0


class TestHashWeights:
    def test_deterministic(self):
        fn = HashWeights(max_weight=64, seed=3)
        src = np.arange(100)
        dst = np.arange(100) + 1
        assert np.array_equal(fn(src, dst), fn(src, dst))
        assert np.array_equal(fn(src, dst), HashWeights(max_weight=64, seed=3)(src, dst))

    def test_range(self):
        fn = HashWeights(max_weight=16, seed=0)
        w = fn(np.arange(5000), np.arange(5000) % 97)
        assert w.min() >= 1.0
        assert w.max() <= 16.0
        assert np.array_equal(w, np.floor(w))  # integral weights

    def test_seed_changes_values(self):
        src, dst = np.arange(200), np.arange(200) + 7
        a = HashWeights(max_weight=64, seed=1)(src, dst)
        b = HashWeights(max_weight=64, seed=2)(src, dst)
        assert not np.array_equal(a, b)

    def test_direction_sensitive(self):
        fn = HashWeights(max_weight=1 << 20, seed=0)
        a = fn(np.array([3]), np.array([4]))
        b = fn(np.array([4]), np.array([3]))
        assert a[0] != b[0]

    def test_roughly_uniform(self):
        fn = HashWeights(max_weight=4, seed=0)
        w = fn(np.arange(8000), np.arange(8000) * 3 % 7919)
        counts = np.bincount(w.astype(int), minlength=5)[1:5]
        assert counts.min() > 8000 / 4 * 0.8

    def test_invalid_max_weight(self):
        with pytest.raises(ValueError):
            HashWeights(max_weight=0)

    def test_repr(self):
        assert "max_weight=64" in repr(HashWeights(64, 1))


def test_default_weights_is_stable():
    a = default_weights()
    b = default_weights()
    src, dst = np.arange(50), np.arange(50) + 2
    assert np.array_equal(a(src, dst), b(src, dst))
