"""Tests for repro.graph.stats."""

import networkx as nx
from hypothesis import given, settings

from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.stats import (
    compute_stats,
    degree_histogram,
    reach_count,
    weakly_connected_labels,
)
from tests.strategies import edge_pairs


def csr_of(pairs, n):
    return CSRGraph.from_edge_set(EdgeSet.from_pairs(pairs), n)


class TestWeakComponents:
    def test_two_components(self):
        g = csr_of([(0, 1), (1, 2), (3, 4)], 5)
        labels = weakly_connected_labels(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_direction_ignored(self):
        g = csr_of([(1, 0), (1, 2)], 3)
        labels = weakly_connected_labels(g)
        assert len(set(labels.tolist())) == 1

    def test_isolated_vertices_are_own_components(self):
        g = csr_of([(0, 1)], 4)
        labels = weakly_connected_labels(g)
        assert labels[2] == 2
        assert labels[3] == 3

    @settings(max_examples=40)
    @given(edge_pairs(max_edges=30))
    def test_matches_networkx(self, ab):
        n, pairs = ab
        g = csr_of(pairs, n)
        labels = weakly_connected_labels(g)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(pairs)
        for component in nx.weakly_connected_components(nxg):
            component = sorted(component)
            assert len({labels[v] for v in component}) == 1
        # distinct components get distinct labels
        want = len(list(nx.weakly_connected_components(nxg)))
        assert len(set(labels.tolist())) == want


class TestStats:
    def test_summary_fields(self):
        g = csr_of([(0, 1), (0, 2), (1, 2)], 5)
        stats = compute_stats(g)
        assert stats.num_vertices == 5
        assert stats.num_edges == 3
        assert stats.max_out_degree == 2
        assert stats.max_in_degree == 2
        assert stats.isolated_vertices == 2
        assert stats.num_components == 3  # {0,1,2}, {3}, {4}
        assert stats.largest_component == 3
        assert len(stats.as_rows()) == 8

    def test_empty_graph(self):
        g = CSRGraph.empty(3)
        stats = compute_stats(g)
        assert stats.num_edges == 0
        assert stats.isolated_vertices == 3
        assert stats.num_components == 3

    def test_reach_count(self):
        g = csr_of([(0, 1), (1, 2), (3, 0)], 5)
        assert reach_count(g, 0) == 3
        assert reach_count(g, 3) == 4
        assert reach_count(g, 4) == 1

    def test_degree_histogram_covers_all_vertices(self):
        g = csr_of([(0, i) for i in range(1, 9)] + [(1, 2)], 16)
        hist = degree_histogram(g)
        assert sum(hist.values()) == 16
