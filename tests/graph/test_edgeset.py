"""Tests for repro.graph.edgeset."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import EdgeSetError
from repro.graph.edgeset import (
    MAX_VERTEX_ID,
    EdgeSet,
    decode_edges,
    encode_edges,
)
from tests.strategies import edge_pairs


class TestEncoding:
    def test_roundtrip(self):
        src = np.array([0, 5, 7, MAX_VERTEX_ID])
        dst = np.array([1, 0, 7, MAX_VERTEX_ID])
        codes = encode_edges(src, dst)
        s2, d2 = decode_edges(codes)
        assert s2.tolist() == src.tolist()
        assert d2.tolist() == dst.tolist()

    def test_codes_order_by_source_then_target(self):
        codes = encode_edges(np.array([1, 0, 0]), np.array([0, 2, 1]))
        assert sorted(codes.tolist()) == [1, 2, (1 << 32)]

    def test_negative_id_rejected(self):
        with pytest.raises(EdgeSetError):
            encode_edges(np.array([-1]), np.array([0]))

    def test_oversized_id_rejected(self):
        with pytest.raises(EdgeSetError):
            encode_edges(np.array([MAX_VERTEX_ID + 1]), np.array([0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EdgeSetError):
            encode_edges(np.array([1, 2]), np.array([3]))


class TestConstruction:
    def test_empty(self):
        es = EdgeSet.empty()
        assert len(es) == 0
        assert not es
        assert list(es) == []
        assert es.max_vertex() == -1

    def test_from_pairs(self):
        es = EdgeSet.from_pairs([(1, 2), (0, 3)])
        assert len(es) == 2
        assert (1, 2) in es
        assert (0, 3) in es
        assert (2, 1) not in es

    def test_deduplication(self):
        es = EdgeSet.from_pairs([(1, 2), (1, 2), (1, 2)])
        assert len(es) == 1

    def test_from_bad_pairs(self):
        with pytest.raises(EdgeSetError):
            EdgeSet.from_pairs([(1, 2, 3)])

    def test_codes_sorted_unique(self):
        es = EdgeSet(np.array([5, 1, 5, 3], dtype=np.int64))
        assert es.codes.tolist() == [1, 3, 5]

    def test_max_vertex(self):
        es = EdgeSet.from_pairs([(3, 9), (2, 4)])
        assert es.max_vertex() == 9


class TestSetProtocol:
    def test_iteration_yields_pairs(self):
        pairs = [(0, 1), (2, 3)]
        assert sorted(EdgeSet.from_pairs(pairs)) == pairs

    def test_equality_and_hash(self):
        a = EdgeSet.from_pairs([(0, 1), (1, 2)])
        b = EdgeSet.from_pairs([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != EdgeSet.from_pairs([(0, 1)])

    def test_eq_other_type(self):
        assert EdgeSet.empty() != "not an edge set"

    def test_contains_codes(self):
        es = EdgeSet.from_pairs([(0, 1), (2, 3)])
        codes = encode_edges(np.array([0, 2, 4]), np.array([1, 4, 4]))
        assert es.contains_codes(codes).tolist() == [True, False, False]

    def test_contains_codes_empty_set(self):
        es = EdgeSet.empty()
        codes = encode_edges(np.array([0]), np.array([1]))
        assert es.contains_codes(codes).tolist() == [False]

    def test_repr_is_informative(self):
        es = EdgeSet.from_pairs([(0, 1)])
        assert "n=1" in repr(es)


@given(edge_pairs(max_edges=25), edge_pairs(max_edges=25))
def test_algebra_matches_python_sets(ab, cd):
    """Union / difference / intersection / xor agree with Python sets."""
    _, pairs_a = ab
    _, pairs_b = cd
    a, b = EdgeSet.from_pairs(pairs_a), EdgeSet.from_pairs(pairs_b)
    sa, sb = set(pairs_a), set(pairs_b)
    assert set(a | b) == sa | sb
    assert set(a - b) == sa - sb
    assert set(a & b) == sa & sb
    assert set(a ^ b) == sa ^ sb
    assert a.isdisjoint(b) == sa.isdisjoint(sb)
    assert a.issubset(b) == sa.issubset(sb)
    assert a.issuperset(b) == sa.issuperset(sb)


@given(edge_pairs(max_edges=25))
def test_algebra_identities(ab):
    _, pairs = ab
    a = EdgeSet.from_pairs(pairs)
    empty = EdgeSet.empty()
    assert a | empty == a
    assert a - empty == a
    assert a & empty == empty
    assert a - a == empty
    assert a & a == a
    assert a ^ a == empty
