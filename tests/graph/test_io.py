"""Tests for repro.graph.io."""

import pytest

from repro.errors import GraphError
from repro.graph.edgeset import EdgeSet
from repro.graph.io import (
    load_edge_list,
    load_edge_set_npz,
    save_edge_list,
    save_edge_set_npz,
)


class TestEdgeListText:
    def test_roundtrip(self, tmp_path):
        es = EdgeSet.from_pairs([(0, 1), (5, 2), (100, 3)])
        path = tmp_path / "g.txt"
        save_edge_list(es, path)
        assert load_edge_list(path) == es

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n2 3  # trailing comment\n")
        es = load_edge_list(path)
        assert set(es) == {(0, 1), (2, 3)}

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        assert len(load_edge_list(path)) == 0

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError, match="expected"):
            load_edge_list(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError, match="non-integer"):
            load_edge_list(path)

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 42\n")
        assert set(load_edge_list(path)) == {(0, 1)}


class TestNpz:
    def test_roundtrip(self, tmp_path):
        es = EdgeSet.from_pairs([(3, 4), (0, 9)])
        path = tmp_path / "g.npz"
        save_edge_set_npz(es, path)
        assert load_edge_set_npz(path) == es

    def test_empty_set(self, tmp_path):
        path = tmp_path / "g.npz"
        save_edge_set_npz(EdgeSet.empty(), path)
        assert len(load_edge_set_npz(path)) == 0

    def test_wrong_bundle(self, tmp_path):
        import numpy as np

        path = tmp_path / "g.npz"
        np.savez_compressed(path, other=np.array([1]))
        with pytest.raises(GraphError):
            load_edge_set_npz(path)
