"""Tests for repro.graph.transform."""

import numpy as np
from hypothesis import given

from repro.graph.edgeset import EdgeSet
from repro.graph.transform import (
    induced_subgraph,
    relabel_dense,
    remove_self_loops,
    reverse_edges,
    symmetrize,
)
from tests.strategies import edge_pairs


def es(*pairs):
    return EdgeSet.from_pairs(list(pairs))


class TestSymmetrize:
    def test_adds_reverses(self):
        sym = symmetrize(es((0, 1), (1, 2)))
        assert set(sym) == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_idempotent(self):
        once = symmetrize(es((0, 1), (2, 0)))
        assert symmetrize(once) == once

    @given(edge_pairs(max_edges=25))
    def test_contains_both_directions(self, ab):
        _, pairs = ab
        sym = symmetrize(EdgeSet.from_pairs(pairs))
        for u, v in pairs:
            assert (u, v) in sym and (v, u) in sym


class TestReverse:
    def test_reverses(self):
        assert set(reverse_edges(es((0, 1), (2, 3)))) == {(1, 0), (3, 2)}

    @given(edge_pairs(max_edges=25))
    def test_involution(self, ab):
        _, pairs = ab
        edges = EdgeSet.from_pairs(pairs)
        assert reverse_edges(reverse_edges(edges)) == edges


class TestSelfLoops:
    def test_drops_only_loops(self):
        loops = EdgeSet.from_arrays(np.array([0, 1, 2]), np.array([0, 2, 2]))
        cleaned = remove_self_loops(loops)
        assert set(cleaned) == {(1, 2)}

    def test_no_loops_unchanged(self):
        edges = es((0, 1), (1, 2))
        assert remove_self_loops(edges) == edges


class TestInducedSubgraph:
    def test_both_endpoints_required(self):
        edges = es((0, 1), (1, 2), (2, 3))
        sub = induced_subgraph(edges, np.array([1, 2]))
        assert set(sub) == {(1, 2)}

    def test_empty_vertex_set(self):
        assert len(induced_subgraph(es((0, 1)), np.array([], dtype=np.int64))) == 0

    def test_full_vertex_set_is_identity(self):
        edges = es((0, 1), (3, 2))
        assert induced_subgraph(edges, np.arange(4)) == edges


class TestRelabelDense:
    def test_dense_range(self):
        edges = es((10, 50), (50, 99))
        relabelled, mapping = relabel_dense(edges)
        assert relabelled.max_vertex() == 2
        assert mapping == {10: 0, 50: 1, 99: 2}
        assert set(relabelled) == {(0, 1), (1, 2)}

    def test_structure_preserved(self):
        edges = es((7, 3), (3, 9), (9, 7))
        relabelled, mapping = relabel_dense(edges)
        for u, v in edges:
            assert (mapping[u], mapping[v]) in relabelled

    @given(edge_pairs(max_edges=25))
    def test_bijective_on_used_vertices(self, ab):
        _, pairs = ab
        edges = EdgeSet.from_pairs(pairs)
        relabelled, mapping = relabel_dense(edges)
        assert len(relabelled) == len(edges)
        used = {u for u, v in pairs} | {v for _, v in pairs}
        assert set(mapping) == used
        assert sorted(mapping.values()) == list(range(len(used)))
