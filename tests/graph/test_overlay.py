"""Tests for repro.graph.overlay."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import HashWeights
from tests.strategies import edge_pairs

WF = HashWeights(max_weight=9, seed=4)


def csr_of(pairs, n):
    return CSRGraph.from_edge_set(EdgeSet.from_pairs(pairs), n, weight_fn=WF)


class TestComposition:
    def test_base_only(self):
        base = csr_of([(0, 1)], 3)
        ov = OverlayGraph(base)
        assert ov.num_edges == 1
        assert ov.edge_set() == base.edge_set()

    def test_with_delta_is_persistent(self):
        base = csr_of([(0, 1)], 3)
        ov0 = OverlayGraph(base)
        ov1 = ov0.with_delta(csr_of([(1, 2)], 3))
        assert ov0.num_edges == 1  # original untouched
        assert ov1.num_edges == 2
        assert len(ov1.deltas) == 1

    def test_vertex_count_mismatch(self):
        base = csr_of([(0, 1)], 3)
        with pytest.raises(GraphError):
            OverlayGraph(base, (csr_of([(0, 1)], 4),))
        with pytest.raises(GraphError):
            OverlayGraph(base).with_delta(csr_of([(0, 1)], 4))

    def test_degrees_sum_components(self):
        base = csr_of([(0, 1), (0, 2)], 3)
        ov = OverlayGraph(base, (csr_of([(0, 1)], 3),))  # parallel edge allowed
        assert ov.degrees().tolist() == [3, 0, 0]


class TestGather:
    def test_gather_combines_components(self):
        base = csr_of([(0, 1)], 4)
        ov = OverlayGraph(base, (csr_of([(0, 2)], 4), csr_of([(0, 3)], 4)))
        src, dst, _ = ov.gather(np.array([0]))
        assert sorted(dst.tolist()) == [1, 2, 3]
        assert src.tolist() == [0, 0, 0]

    def test_gather_empty(self):
        ov = OverlayGraph(csr_of([], 3))
        s, d, w = ov.gather(np.array([0, 1, 2]))
        assert s.size == d.size == w.size == 0

    def test_neighbors_combines(self):
        base = csr_of([(1, 0)], 3)
        ov = OverlayGraph(base, (csr_of([(1, 2)], 3),))
        targets, weights = ov.neighbors(1)
        assert sorted(targets.tolist()) == [0, 2]
        assert weights.size == 2

    @given(edge_pairs(max_edges=20), edge_pairs(max_edges=20))
    def test_overlay_equals_flatten(self, ab, cd):
        n1, pairs1 = ab
        n2, pairs2 = cd
        n = max(n1, n2)
        base = CSRGraph.from_edge_set(EdgeSet.from_pairs(pairs1), n, weight_fn=WF)
        delta = CSRGraph.from_edge_set(EdgeSet.from_pairs(pairs2), n, weight_fn=WF)
        ov = OverlayGraph(base, (delta,))
        flat = ov.flatten()
        # Same multiset of (src, dst, weight) triples.
        s1, d1, w1 = ov.gather(np.arange(n))
        s2, d2, w2 = flat.gather(np.arange(n))
        assert sorted(zip(s1, d1, w1)) == sorted(zip(s2, d2, w2))
        assert ov.num_edges == flat.num_edges


def test_repr():
    ov = OverlayGraph(csr_of([(0, 1)], 3), (csr_of([], 3),))
    assert "deltas=1" in repr(ov)
