"""Pull-based execution must agree with push everywhere."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.registry import get_algorithm
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import (
    EngineCounters,
    seed_edges,
    static_compute,
)
from repro.kickstarter.pull import (
    DENSE_FRACTION,
    pull_until_stable,
    static_compute_pull,
)
from tests.conftest import ALL_ALGORITHMS, assert_values_equal
from tests.strategies import edge_pairs, sources_for

WF = HashWeights(max_weight=8, seed=7)


class TestStaticPull:
    def test_diamond(self, diamond_csr):
        state = static_compute_pull(diamond_csr, get_algorithm("BFS"), 0)
        assert state.values.tolist() == [0.0, 1.0, 1.0, 2.0, 3.0, 4.0]

    def test_matches_push(self, diamond_csr, algorithm):
        push = static_compute(diamond_csr, algorithm, 0)
        pull = static_compute_pull(diamond_csr, algorithm, 0)
        assert_values_equal(pull.values, push.values, algorithm.name)

    def test_auto_direction(self, small_rmat, algorithm):
        g = CSRGraph.from_edge_set(small_rmat, 256, weight_fn=WF)
        push = static_compute(g, algorithm, 3)
        auto = static_compute_pull(g, algorithm, 3, direction="auto")
        assert_values_equal(auto.values, push.values, f"{algorithm.name}/auto")

    def test_unknown_direction(self, diamond_csr):
        with pytest.raises(EngineError):
            static_compute_pull(diamond_csr, get_algorithm("BFS"), 0,
                                direction="sideways")

    def test_parent_tracking(self, diamond_csr):
        alg = get_algorithm("SSSP")
        state = static_compute_pull(diamond_csr, alg, 0, track_parents=True)
        for v in range(6):
            if state.parents[v] < 0:
                continue
            u = int(state.parents[v])
            targets, weights = diamond_csr.neighbors(u)
            idx = np.flatnonzero(targets == v)
            prop = alg.proposals(
                np.array([state.values[u]]), np.array([weights[idx[0]]])
            )[0]
            assert prop == state.values[v]

    def test_counters(self, diamond_csr):
        counters = EngineCounters()
        static_compute_pull(diamond_csr, get_algorithm("BFS"), 0, counters=counters)
        assert counters.edges_relaxed > 0
        assert counters.iterations > 0

    def test_reusing_precomputed_transpose(self, diamond_csr):
        t = diamond_csr.transpose()
        alg = get_algorithm("BFS")
        a = static_compute_pull(diamond_csr, alg, 0, transpose=t)
        b = static_compute_pull(diamond_csr, alg, 0)
        assert_values_equal(a.values, b.values)


class TestPullIncremental:
    def test_pull_after_seed_matches_push(self, small_rmat):
        """Seed an addition batch, then stabilise by pulling."""
        alg = get_algorithm("SSSP")
        n = 256
        rng = np.random.default_rng(2)
        picks = rng.choice(small_rmat.codes.size, size=80, replace=False)
        base = EdgeSet(np.delete(small_rmat.codes, picks))
        additions = EdgeSet(small_rmat.codes[picks])
        full_csr = CSRGraph.from_edge_set(small_rmat, n, weight_fn=WF)

        base_csr = CSRGraph.from_edge_set(base, n, weight_fn=WF)
        state = static_compute(base_csr, alg, 3)
        src, dst = additions.arrays()
        frontier = seed_edges(alg, state, src, dst, WF(src, dst))
        pull_until_stable(full_csr, alg, state, frontier)

        want = static_compute(full_csr, alg, 3).values
        assert_values_equal(state.values, want)

    def test_empty_frontier_is_noop(self, diamond_csr):
        alg = get_algorithm("BFS")
        state = static_compute(diamond_csr, alg, 0)
        before = state.values.copy()
        pull_until_stable(
            diamond_csr, alg, state, np.empty(0, dtype=np.int64)
        )
        assert np.array_equal(state.values, before)


@settings(max_examples=25, deadline=None)
@given(edge_pairs(max_edges=30), sources_for(12))
@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_pull_matches_push_random(name, ab, source):
    n, pairs = ab
    source = source % n
    alg = get_algorithm(name)
    g = CSRGraph.from_edge_set(EdgeSet.from_pairs(pairs), n, weight_fn=WF)
    push = static_compute(g, alg, source)
    pull = static_compute_pull(g, alg, source)
    auto = static_compute_pull(g, alg, source, direction="auto")
    assert_values_equal(pull.values, push.values, f"{name}/pull")
    assert_values_equal(auto.values, push.values, f"{name}/auto")


def test_dense_fraction_is_sane():
    assert 0.0 < DENSE_FRACTION < 1.0
