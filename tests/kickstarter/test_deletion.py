"""Trim-and-repair deletions must equal from-scratch recomputation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import get_algorithm
from repro.errors import EngineError
from repro.graph.edgeset import EdgeSet
from repro.graph.mutable import MutableGraph
from repro.graph.weights import HashWeights
from repro.kickstarter.deletion import trim_and_repair
from repro.kickstarter.engine import (
    EngineCounters,
    incremental_additions,
    static_compute,
)
from tests.conftest import ALL_ALGORITHMS, assert_values_equal
from tests.helpers import reference_compute_edgeset
from tests.strategies import edge_pairs

WF = HashWeights(max_weight=8, seed=7)


def run_deletion(
    base, deletions, n, alg, source, counters=None, mode="auto", tagging="support"
):
    """Converge on ``base``, then delete ``deletions`` incrementally."""
    graph = MutableGraph.from_edge_set(base, n, weight_fn=WF)
    state = static_compute(graph, alg, source, track_parents=True)
    graph.delete_batch(deletions)
    src, dst = deletions.arrays()
    trim_and_repair(
        graph, alg, state, deletions, counters=counters, mode=mode,
        tagging=tagging, deleted_weights=WF(src, dst),
    )
    return state.values


class TestSimpleCases:
    def test_delete_sole_path(self):
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1), (1, 2)])
        values = run_deletion(base, EdgeSet.from_pairs([(1, 2)]), 3, alg, 0)
        assert values.tolist() == [0.0, 1.0, np.inf]

    def test_delete_with_alternative_path(self):
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1), (1, 2), (0, 3), (3, 2)])
        values = run_deletion(base, EdgeSet.from_pairs([(1, 2)]), 4, alg, 0)
        assert values[2] == 2.0  # rerouted via 3

    def test_delete_causes_longer_path(self):
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 2), (0, 1), (1, 3), (3, 2)])
        values = run_deletion(base, EdgeSet.from_pairs([(0, 2)]), 4, alg, 0)
        assert values[2] == 3.0

    @pytest.mark.parametrize("tagging", ["parent", "hybrid", "support"])
    def test_delete_non_supporting_edge_is_cheap(self, tagging):
        """Deleting an edge that does not support any value trims nothing
        under either tagging policy (the support policy sees the deleted
        edge's proposal does not match the target's value)."""
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1), (0, 2), (1, 2)])
        counters = EngineCounters()
        values = run_deletion(
            base, EdgeSet.from_pairs([(1, 2)]), 3, alg, 0,
            counters=counters, tagging=tagging,
        )
        assert values.tolist() == [0.0, 1.0, 1.0]
        assert counters.vertices_trimmed == 0

    def test_support_tagging_over_approximates(self):
        """A deleted edge that ties with the surviving support triggers a
        trim under support tagging but not under exact parent tagging —
        both repair to the same (correct) values."""
        alg = get_algorithm("BFS")
        # Two equal-length paths to 3; delete one of the final edges.
        base = EdgeSet.from_pairs([(0, 1), (0, 2), (1, 3), (2, 3)])
        deletions = EdgeSet.from_pairs([(2, 3)])
        support_counters = EngineCounters()
        support = run_deletion(
            base, deletions, 4, alg, 0,
            counters=support_counters, tagging="support",
        )
        assert support.tolist() == [0.0, 1.0, 1.0, 2.0]
        assert support_counters.vertices_trimmed >= 1

    def test_support_without_weights_tags_all_targets(self):
        """With no deleted-edge weights, support tagging must stay safe by
        tagging every deletion target."""
        alg = get_algorithm("SSSP")
        base = EdgeSet.from_pairs([(0, 1), (1, 2), (0, 2)])
        deletions = EdgeSet.from_pairs([(1, 2)])
        graph = MutableGraph.from_edge_set(base, 3, weight_fn=WF)
        state = static_compute(graph, alg, 0, track_parents=True)
        graph.delete_batch(deletions)
        counters = EngineCounters()
        trim_and_repair(graph, alg, state, deletions, counters=counters)
        assert counters.vertices_trimmed == 1
        want = reference_compute_edgeset(base - deletions, 3, alg, 0, WF)
        assert_values_equal(state.values, want)

    def test_cascade_down_a_chain(self):
        """Deleting the chain head invalidates the whole tail."""
        alg = get_algorithm("BFS")
        chain = EdgeSet.from_pairs([(i, i + 1) for i in range(6)])
        counters = EngineCounters()
        values = run_deletion(
            chain, EdgeSet.from_pairs([(0, 1)]), 7, alg, 0, counters=counters
        )
        assert values[0] == 0.0
        assert np.all(np.isinf(values[1:]))
        assert counters.vertices_trimmed == 6

    def test_cycle_cannot_bootstrap(self):
        """After trimming, a cycle must not feed itself stale values."""
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1), (1, 2), (2, 3), (3, 1)])
        values = run_deletion(base, EdgeSet.from_pairs([(0, 1)]), 4, alg, 0)
        assert values[0] == 0.0
        assert np.all(np.isinf(values[1:]))

    def test_source_never_trimmed(self):
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1), (1, 0)])
        values = run_deletion(base, EdgeSet.from_pairs([(0, 1)]), 2, alg, 0)
        assert values[0] == 0.0
        assert np.isinf(values[1])

    def test_parent_tagging_requires_parent_tracking(self):
        alg = get_algorithm("BFS")
        graph = MutableGraph.from_edge_set(
            EdgeSet.from_pairs([(0, 1)]), 2, weight_fn=WF
        )
        state = static_compute(graph, alg, 0, track_parents=False)
        with pytest.raises(EngineError):
            trim_and_repair(
                graph, alg, state, EdgeSet.from_pairs([(0, 1)]), tagging="parent"
            )

    def test_unknown_tagging_rejected(self):
        alg = get_algorithm("BFS")
        graph = MutableGraph.from_edge_set(
            EdgeSet.from_pairs([(0, 1)]), 2, weight_fn=WF
        )
        state = static_compute(graph, alg, 0, track_parents=True)
        with pytest.raises(EngineError, match="tagging"):
            trim_and_repair(
                graph, alg, state, EdgeSet.from_pairs([(0, 1)]), tagging="psychic"
            )

    def test_empty_deletion_batch(self, algorithm):
        base = EdgeSet.from_pairs([(0, 1), (1, 2)])
        values = run_deletion(base, EdgeSet.empty(), 3, algorithm, 0)
        want = reference_compute_edgeset(base, 3, algorithm, 0, WF)
        assert_values_equal(values, want)

    def test_returns_trim_count(self):
        alg = get_algorithm("BFS")
        graph = MutableGraph.from_edge_set(
            EdgeSet.from_pairs([(0, 1), (1, 2)]), 3, weight_fn=WF
        )
        state = static_compute(graph, alg, 0, track_parents=True)
        deletions = EdgeSet.from_pairs([(0, 1)])
        graph.delete_batch(deletions)
        assert trim_and_repair(graph, alg, state, deletions) == 2


class TestSingleEdgeCases:
    """The live-tip overlay's staple deletions, bit-identical to scratch.

    Per-update ingest deletes exactly one edge at a time, so the three
    shapes a single deletion can take — severing a vertex's last
    in-edge, cutting the source's own approximation tree, and pure
    delete-then-reinsert churn — each get a from-scratch oracle check
    across every algorithm and tagging policy.
    """

    @pytest.mark.parametrize("tagging", ["parent", "hybrid", "support"])
    def test_last_in_edge_of_reachable_vertex(self, algorithm, tagging):
        # (1, 2) is 2's only in-edge; deleting it must push
        # unreachability through 2 down to 3, while 4 keeps 5 alive.
        base = EdgeSet.from_pairs(
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (3, 5)]
        )
        deletions = EdgeSet.from_pairs([(1, 2)])
        values = run_deletion(base, deletions, 6, algorithm, 0,
                              tagging=tagging)
        want = reference_compute_edgeset(base - deletions, 6, algorithm,
                                         0, WF)
        assert_values_equal(values, want,
                            f"{algorithm.name}/{tagging} last in-edge")
        assert values[2] == algorithm.worst
        assert values[3] == algorithm.worst

    @pytest.mark.parametrize("tagging", ["parent", "hybrid", "support"])
    def test_edge_on_the_source_approximation_tree(self, algorithm,
                                                   tagging):
        # (0, 1) roots the source's own approximation subtree; the
        # repair must reroute 1 (and everything below it) through the
        # longer 0 -> 2 -> 1 detour, never trimming the source itself.
        base = EdgeSet.from_pairs([(0, 1), (0, 2), (2, 1), (1, 3)])
        deletions = EdgeSet.from_pairs([(0, 1)])
        counters = EngineCounters()
        values = run_deletion(base, deletions, 4, algorithm, 0,
                              counters=counters, tagging=tagging)
        want = reference_compute_edgeset(base - deletions, 4, algorithm,
                                         0, WF)
        assert_values_equal(values, want,
                            f"{algorithm.name}/{tagging} source tree")
        assert values[0] == algorithm.source_value

    def test_delete_then_reinsert_is_identity(self, algorithm):
        # Weights are a deterministic function of the edge, so a trim
        # followed by a re-push of the same edge must restore the
        # original converged state bit for bit — the invariant behind
        # the overlay's net-batch churn cancellation.
        base = EdgeSet.from_pairs(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
        )
        graph = MutableGraph.from_edge_set(base, 6, weight_fn=WF)
        original = static_compute(graph, algorithm, 0, track_parents=True)
        before = original.values.copy()
        edge = EdgeSet.from_pairs([(3, 4)])
        src, dst = edge.arrays()
        weights = WF(src, dst)
        graph.delete_batch(edge)
        trim_and_repair(graph, algorithm, original, edge,
                        tagging="hybrid", deleted_weights=weights)
        assert original.values[4] == algorithm.worst  # really severed
        graph.add_batch(edge)
        incremental_additions(graph, algorithm, original, src, dst, weights)
        assert_values_equal(original.values, before,
                            f"{algorithm.name} delete/reinsert identity")


@settings(max_examples=20, deadline=None)
@given(edge_pairs(max_edges=25), st.data())
@pytest.mark.parametrize("tagging", ["hybrid", "support", "parent"])
@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_deletion_equals_scratch_random(name, tagging, ab, data):
    n, pairs = ab
    alg = get_algorithm(name)
    base = EdgeSet.from_pairs(pairs)
    k = data.draw(st.integers(0, min(8, len(base))))
    codes = base.codes
    idx = data.draw(
        st.lists(st.integers(0, len(base) - 1), min_size=k, max_size=k, unique=True)
    ) if len(base) else []
    deletions = EdgeSet(codes[np.asarray(idx, dtype=np.int64)]) if idx else EdgeSet.empty()
    got = run_deletion(base, deletions, n, alg, 0, tagging=tagging)
    want = reference_compute_edgeset(base - deletions, n, alg, 0, WF)
    assert_values_equal(got, want, f"{name}/{tagging}")


@settings(max_examples=15, deadline=None)
@given(edge_pairs(max_edges=25), st.data())
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_deletion_modes_agree(mode, ab, data):
    n, pairs = ab
    alg = get_algorithm("SSWP")
    base = EdgeSet.from_pairs(pairs)
    k = data.draw(st.integers(0, min(6, len(base))))
    idx = data.draw(
        st.lists(st.integers(0, len(base) - 1), min_size=k, max_size=k, unique=True)
    ) if len(base) else []
    deletions = EdgeSet(base.codes[np.asarray(idx, dtype=np.int64)]) if idx else EdgeSet.empty()
    got = run_deletion(base, deletions, n, alg, 0, mode=mode)
    want = reference_compute_edgeset(base - deletions, n, alg, 0, WF)
    assert_values_equal(got, want, mode)


def test_deletion_on_larger_graph(small_rmat, algorithm):
    n = 256
    rng = np.random.default_rng(1)
    picks = rng.choice(small_rmat.codes.size, size=120, replace=False)
    deletions = EdgeSet(small_rmat.codes[picks])
    got = run_deletion(small_rmat, deletions, n, algorithm, 3)
    want_graph = MutableGraph.from_edge_set(small_rmat - deletions, n, weight_fn=WF)
    want = static_compute(want_graph, algorithm, 3).values
    assert_values_equal(got, want, algorithm.name)
