"""Incremental additions must equal from-scratch recomputation."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.registry import get_algorithm
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.mutable import MutableGraph
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import incremental_additions, static_compute
from tests.conftest import ALL_ALGORITHMS, assert_values_equal
from tests.helpers import reference_compute_edgeset
from tests.strategies import edge_pairs

WF = HashWeights(max_weight=8, seed=7)


def run_incremental(base, additions, n, alg, source, mode="auto", graph_kind="overlay"):
    """Converge on ``base``, then add ``additions`` incrementally."""
    base_csr = CSRGraph.from_edge_set(base, n, weight_fn=WF)
    state = static_compute(base_csr, alg, source)
    src, dst = additions.arrays()
    weights = WF(src, dst)
    if graph_kind == "overlay":
        graph = OverlayGraph(base_csr, (CSRGraph.from_edge_set(additions, n, weight_fn=WF),))
    elif graph_kind == "mutable":
        graph = MutableGraph.from_edge_set(base, n, weight_fn=WF)
        graph.add_batch(additions)
    else:
        graph = CSRGraph.from_edge_set(base | additions, n, weight_fn=WF)
    incremental_additions(graph, alg, state, src, dst, weights, mode=mode)
    return state.values


class TestSimpleCases:
    def test_addition_shortens_path(self):
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1), (1, 2), (2, 3)])
        add = EdgeSet.from_pairs([(0, 3)])
        values = run_incremental(base, add, 4, alg, 0)
        assert values.tolist() == [0.0, 1.0, 2.0, 1.0]

    def test_addition_connects_unreached(self):
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1)])
        add = EdgeSet.from_pairs([(1, 2), (2, 3)])
        values = run_incremental(base, add, 4, alg, 0)
        assert values.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_useless_addition_changes_nothing(self):
        alg = get_algorithm("BFS")
        base = EdgeSet.from_pairs([(0, 1), (0, 2)])
        add = EdgeSet.from_pairs([(1, 2)])  # longer route to 2
        values = run_incremental(base, add, 3, alg, 0)
        assert values.tolist() == [0.0, 1.0, 1.0]

    def test_empty_addition_batch(self, algorithm):
        base = EdgeSet.from_pairs([(0, 1), (1, 2)])
        values = run_incremental(base, EdgeSet.empty(), 3, algorithm, 0)
        want = reference_compute_edgeset(base, 3, algorithm, 0, WF)
        assert_values_equal(values, want)

    def test_addition_cascades_through_cycle(self):
        alg = get_algorithm("SSSP")
        base = EdgeSet.from_pairs([(1, 2), (2, 3), (3, 1)])
        add = EdgeSet.from_pairs([(0, 1)])
        values = run_incremental(base, add, 4, alg, 0)
        want = reference_compute_edgeset(base | add, 4, alg, 0, WF)
        assert_values_equal(values, want)


@settings(max_examples=30, deadline=None)
@given(edge_pairs(max_edges=25), edge_pairs(max_edges=10))
@pytest.mark.parametrize("name", ALL_ALGORITHMS)
@pytest.mark.parametrize("graph_kind", ["overlay", "mutable", "flat"])
def test_incremental_equals_scratch_random(name, graph_kind, ab, cd):
    n1, base_pairs = ab
    n2, add_pairs = cd
    n = max(n1, n2)
    alg = get_algorithm(name)
    base = EdgeSet.from_pairs(base_pairs)
    additions = EdgeSet.from_pairs(add_pairs) - base
    got = run_incremental(base, additions, n, alg, 0, graph_kind=graph_kind)
    want = reference_compute_edgeset(base | additions, n, alg, 0, WF)
    assert_values_equal(got, want, f"{name}/{graph_kind}")


@settings(max_examples=15, deadline=None)
@given(edge_pairs(max_edges=25), edge_pairs(max_edges=10))
@pytest.mark.parametrize("mode", ["sync", "async"])
def test_incremental_modes_agree(mode, ab, cd):
    n1, base_pairs = ab
    n2, add_pairs = cd
    n = max(n1, n2)
    alg = get_algorithm("SSSP")
    base = EdgeSet.from_pairs(base_pairs)
    additions = EdgeSet.from_pairs(add_pairs) - base
    got = run_incremental(base, additions, n, alg, 0, mode=mode)
    want = reference_compute_edgeset(base | additions, n, alg, 0, WF)
    assert_values_equal(got, want, mode)


def test_incremental_on_larger_graph(small_rmat, algorithm):
    """Integration-scale check against a vectorised from-scratch run."""
    n = 256
    rng = np.random.default_rng(0)
    codes = small_rmat.codes
    picks = rng.choice(codes.size, size=100, replace=False)
    base = EdgeSet(np.delete(codes, picks))
    additions = EdgeSet(codes[picks])
    got = run_incremental(base, additions, n, algorithm, 3)
    full = CSRGraph.from_edge_set(small_rmat, n, weight_fn=WF)
    want = static_compute(full, algorithm, 3).values
    assert_values_equal(got, want, algorithm.name)
