"""Tests for the push engine (static computation, modes, counters)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.registry import get_algorithm
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import (
    EngineCounters,
    VertexState,
    push_until_stable,
    seed_edges,
    static_compute,
)
from tests.conftest import ALL_ALGORITHMS, assert_values_equal
from tests.helpers import reference_compute_edgeset
from tests.strategies import edge_pairs, sources_for

WF = HashWeights(max_weight=8, seed=7)


class TestStaticCompute:
    def test_bfs_on_diamond(self, diamond_csr):
        state = static_compute(diamond_csr, get_algorithm("BFS"), source=0)
        assert state.values.tolist() == [0.0, 1.0, 1.0, 2.0, 3.0, 4.0]

    def test_unreachable_vertices_stay_worst(self, diamond_csr):
        alg = get_algorithm("SSSP")
        state = static_compute(diamond_csr, alg, source=5)
        assert state.values[5] == 0.0
        assert np.all(np.isinf(state.values[:5]))

    def test_matches_reference(self, diamond_edges, algorithm):
        got = static_compute(
            CSRGraph.from_edge_set(diamond_edges, 6, weight_fn=WF),
            algorithm, source=0,
        ).values
        want = reference_compute_edgeset(diamond_edges, 6, algorithm, 0, WF)
        assert_values_equal(got, want, algorithm.name)

    def test_parent_tracking_consistency(self, diamond_csr):
        alg = get_algorithm("SSSP")
        state = static_compute(diamond_csr, alg, source=0, track_parents=True)
        parents = state.parents
        assert parents is not None
        assert parents[0] == -1  # source has no parent
        # Every reached non-source vertex's value is derivable from its
        # parent via the edge function.
        for v in range(1, 6):
            if np.isinf(state.values[v]):
                assert parents[v] == -1
                continue
            u = parents[v]
            targets, weights = diamond_csr.neighbors(u)
            idx = np.flatnonzero(targets == v)
            assert idx.size == 1
            prop = alg.proposals(
                np.array([state.values[u]]), np.array([weights[idx[0]]])
            )[0]
            assert prop == state.values[v]

    def test_counters_populated(self, diamond_csr):
        counters = EngineCounters()
        static_compute(diamond_csr, get_algorithm("BFS"), 0, counters=counters)
        assert counters.edges_relaxed > 0
        assert counters.iterations > 0
        assert counters.vertices_updated >= 5

    def test_cycle_convergence(self):
        edges = EdgeSet.from_pairs([(0, 1), (1, 2), (2, 0), (2, 1)])
        g = CSRGraph.from_edge_set(edges, 3, weight_fn=WF)
        for name in ALL_ALGORITHMS:
            alg = get_algorithm(name)
            got = static_compute(g, alg, 0).values
            want = reference_compute_edgeset(edges, 3, alg, 0, WF)
            assert_values_equal(got, want, name)

    def test_two_cycle_is_stable(self):
        """A 2-cycle must converge, not ping-pong."""
        g = CSRGraph.from_edge_set(EdgeSet.from_pairs([(0, 1), (1, 0)]), 2)
        state = static_compute(g, get_algorithm("BFS"), 0)
        assert state.values.tolist() == [0.0, 1.0]


class TestModes:
    @pytest.mark.parametrize("mode", ["sync", "async", "auto"])
    def test_modes_agree(self, mode, algorithm, small_rmat):
        g = CSRGraph.from_edge_set(small_rmat, 256, weight_fn=WF)
        sync_state = static_compute(g, algorithm, 3, mode="sync")
        other = static_compute(g, algorithm, 3, mode=mode)
        assert_values_equal(other.values, sync_state.values, f"{algorithm.name}/{mode}")

    def test_unknown_mode_rejected(self, diamond_csr):
        state = VertexState.fresh(get_algorithm("BFS"), 6, 0)
        with pytest.raises(EngineError):
            push_until_stable(
                diamond_csr, get_algorithm("BFS"), state,
                np.array([0]), mode="warp",
            )

    def test_async_parent_tracking(self, diamond_csr):
        alg = get_algorithm("SSSP")
        sync = static_compute(diamond_csr, alg, 0, track_parents=True, mode="sync")
        asy = static_compute(diamond_csr, alg, 0, track_parents=True, mode="async")
        assert_values_equal(asy.values, sync.values, "async parents")
        # Parents may differ on ties but must be valid (value-derivable).
        for v in range(6):
            if asy.parents[v] >= 0:
                u = int(asy.parents[v])
                targets, weights = diamond_csr.neighbors(u)
                idx = np.flatnonzero(targets == v)
                prop = alg.proposals(
                    np.array([asy.values[u]]), np.array([weights[idx[0]]])
                )[0]
                assert prop == asy.values[v]


class TestSeedEdges:
    def test_seed_improves_and_reports(self):
        alg = get_algorithm("SSSP")
        g = CSRGraph.from_edge_set(EdgeSet.from_pairs([(0, 1)]), 3, weight_fn=WF)
        state = static_compute(g, alg, 0)
        # New edge (0, 2): seeding it should improve vertex 2.
        changed = seed_edges(
            alg, state, np.array([0]), np.array([2]), np.array([4.0])
        )
        assert changed.tolist() == [2]
        assert state.values[2] == 4.0

    def test_seed_no_improvement(self):
        alg = get_algorithm("SSSP")
        g = CSRGraph.from_edge_set(EdgeSet.from_pairs([(0, 1)]), 2, weight_fn=WF)
        state = static_compute(g, alg, 0)
        before = state.values.copy()
        changed = seed_edges(
            alg, state, np.array([1]), np.array([0]), np.array([5.0])
        )
        assert changed.size == 0
        assert np.array_equal(state.values, before)

    def test_seed_empty(self):
        alg = get_algorithm("BFS")
        state = VertexState.fresh(alg, 3, 0)
        changed = seed_edges(
            alg, state, np.array([], dtype=np.int64),
            np.array([], dtype=np.int64), np.array([]),
        )
        assert changed.size == 0


class TestVertexState:
    def test_fresh(self, algorithm):
        state = VertexState.fresh(algorithm, 4, 1, track_parents=True)
        assert state.values[1] == algorithm.source_value
        assert state.parents.tolist() == [-1, -1, -1, -1]
        assert state.source == 1

    def test_copy_is_deep(self, algorithm):
        state = VertexState.fresh(algorithm, 4, 0, track_parents=True)
        clone = state.copy()
        clone.values[2] = 42.0
        clone.parents[2] = 1
        assert state.values[2] == algorithm.worst
        assert state.parents[2] == -1


@settings(max_examples=40, deadline=None)
@given(edge_pairs(max_edges=30), sources_for(12))
@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_static_matches_reference_random(name, ab, source):
    n, pairs = ab
    source = source % n
    edges = EdgeSet.from_pairs(pairs)
    alg = get_algorithm(name)
    g = CSRGraph.from_edge_set(edges, n, weight_fn=WF)
    got = static_compute(g, alg, source, mode="auto").values
    want = reference_compute_edgeset(edges, n, alg, source, WF)
    assert_values_equal(got, want, name)
