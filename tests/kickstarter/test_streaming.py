"""Tests for the KickStarter streaming session."""

from hypothesis import given, settings

from repro.algorithms.registry import get_algorithm
from repro.graph.csr import CSRGraph
from repro.graph.weights import HashWeights
from repro.kickstarter.engine import static_compute
from repro.kickstarter.streaming import StreamingSession
from tests.conftest import assert_values_equal
from tests.strategies import evolving_graphs

WF = HashWeights(max_weight=8, seed=7)


class TestStreamingSession:
    def test_values_match_scratch_every_snapshot(self, small_evolving, algorithm):
        session = StreamingSession(small_evolving, algorithm, source=3, weight_fn=WF)
        result = session.run()
        assert len(result.snapshot_values) == small_evolving.num_snapshots
        for i in range(small_evolving.num_snapshots):
            g = small_evolving.snapshot_csr(i, weight_fn=WF)
            want = static_compute(g, algorithm, 3).values
            assert_values_equal(
                result.snapshot_values[i], want, f"{algorithm.name}@{i}"
            )

    def test_phase_timers_populated(self, small_evolving):
        result = StreamingSession(
            small_evolving, get_algorithm("SSSP"), source=3, weight_fn=WF
        ).run()
        phases = result.phase_seconds()
        for name in (
            "initial_compute", "mutation_del", "incremental_del",
            "mutation_add", "incremental_add",
        ):
            assert name in phases
            assert phases[name] >= 0.0
        assert result.total_seconds == sum(phases.values())

    def test_keep_values_false(self, small_evolving):
        result = StreamingSession(
            small_evolving, get_algorithm("BFS"), source=3,
            weight_fn=WF, keep_values=False,
        ).run()
        assert result.snapshot_values == []
        assert result.total_seconds > 0

    def test_counters_accumulate(self, small_evolving):
        result = StreamingSession(
            small_evolving, get_algorithm("BFS"), source=3, weight_fn=WF
        ).run()
        assert result.counters.edges_relaxed > 0
        assert result.counters.vertices_trimmed > 0  # deletions happened

    def test_single_snapshot_stream(self, small_evolving):
        from repro.evolving.snapshots import EvolvingGraph

        single = EvolvingGraph(
            small_evolving.num_vertices, small_evolving.snapshot_edges(0)
        )
        result = StreamingSession(single, get_algorithm("BFS"), 3, weight_fn=WF).run()
        assert len(result.snapshot_values) == 1


@settings(max_examples=20, deadline=None)
@given(evolving_graphs(max_batches=3))
def test_streaming_matches_scratch_random(eg):
    alg = get_algorithm("SSNP")
    result = StreamingSession(eg, alg, source=0, weight_fn=WF).run()
    for i in range(eg.num_snapshots):
        g = CSRGraph.from_edge_set(eg.snapshot_edges(i), eg.num_vertices, weight_fn=WF)
        want = static_compute(g, alg, 0).values
        assert_values_equal(result.snapshot_values[i], want, f"snapshot {i}")
