"""Setup shim for environments whose pip cannot do PEP 517 editable
installs (no `wheel` available offline); `pip install -e .` works via
this file, and pyproject.toml remains the single source of metadata."""
from setuptools import setup

setup()
