#!/usr/bin/env python
"""Quickstart: evaluate one query across every snapshot of an evolving graph.

Builds a small evolving RMAT graph, decomposes it into the CommonGraph
plus per-snapshot surpluses, and answers an SSSP query on all snapshots
three ways — KickStarter streaming (the baseline), Direct-Hop, and
Work-Sharing — verifying they agree and reporting the work each did.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. An evolving graph: a base snapshot plus a stream of updates.
    num_vertices = 1 << 10
    base = repro.rmat_edges(scale=10, num_edges=12_000, seed=7)
    evolving = repro.generate_evolving_graph(
        num_vertices=num_vertices,
        base=base,
        num_snapshots=12,
        batch_size=150,
        add_fraction=0.5,    # half additions, half deletions per batch
        readd_fraction=0.5,  # some additions re-add previously deleted edges
        seed=42,
        name="quickstart",
    )
    print(f"evolving graph: {evolving}")

    weight_fn = repro.default_weights()
    algorithm = repro.SSSP()
    source = 0

    # 2. The CommonGraph decomposition: Gc + one small surplus per snapshot.
    decomp = repro.CommonGraphDecomposition.from_evolving(evolving)
    print(f"common graph has {len(decomp.common)} of "
          f"{len(evolving.snapshot_edges(0))} base edges; "
          f"surplus sizes: {[len(s) for s in decomp.surpluses]}")

    # 3. Three ways to answer the same query on every snapshot.
    streaming = repro.StreamingSession(
        evolving, algorithm, source, weight_fn=weight_fn
    ).run()
    direct = repro.DirectHopEvaluator(
        decomp, algorithm, source, weight_fn=weight_fn
    ).run()
    sharing = repro.WorkSharingEvaluator(
        decomp, algorithm, source, weight_fn=weight_fn
    ).run()

    # 4. They agree, snapshot for snapshot.
    for i in range(evolving.num_snapshots):
        assert np.array_equal(streaming.snapshot_values[i], direct.snapshot_values[i])
        assert np.array_equal(streaming.snapshot_values[i], sharing.snapshot_values[i])
    print("all three strategies computed identical results on every snapshot")

    # 5. But they did very different amounts of work.
    print(f"\n{'strategy':<14} {'seconds':>9} {'additions':>10} {'trimmed':>8}")
    print(f"{'kickstarter':<14} {streaming.total_seconds:>9.4f} "
          f"{'-':>10} {streaming.counters.vertices_trimmed:>8}")
    print(f"{'direct-hop':<14} {direct.total_seconds:>9.4f} "
          f"{direct.additions_processed:>10} {direct.counters.vertices_trimmed:>8}")
    print(f"{'work-sharing':<14} {sharing.total_seconds:>9.4f} "
          f"{sharing.additions_processed:>10} {sharing.counters.vertices_trimmed:>8}")

    speedup = streaming.total_seconds / sharing.total_seconds
    print(f"\nwork-sharing speedup over KickStarter: {speedup:.2f}x")


if __name__ == "__main__":
    main()
