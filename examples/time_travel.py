#!/usr/bin/env python
"""Time travel: asking historical questions of an evolving graph.

CommonGraph keeps every snapshot queryable, so history is not a log to
replay but a dimension to query.  ``repro.temporal`` turns temporal
questions — "what did the graph look like then?", "how did this vertex
trend?", "what changed between these two moments?" — into Triangular
Grid range evaluations.  All specs in one batch share descents: the
engine coalesces their version ranges and evaluates each merged range
with a single work-sharing pass.

Run:  python examples/time_travel.py
"""

import numpy as np

import repro
from repro.temporal import TemporalEngine, parse_specs


def main() -> None:
    num_vertices = 1 << 9
    base = repro.rmat_edges(scale=9, num_edges=6_000, seed=31)
    evolving = repro.generate_evolving_graph(
        num_vertices=num_vertices, base=base, num_snapshots=24,
        batch_size=120, readd_fraction=0.4, seed=32, name="timeline",
    )
    vc = repro.VersionController(evolving, weight_fn=repro.default_weights())
    source = 0

    # Pretend each version was ingested ten seconds after the last, so
    # we can also travel by wall-clock timestamp.
    version_times = {v: 1000.0 + 10.0 * v for v in range(vc.num_versions)}
    engine = TemporalEngine.for_controller(
        vc, "SSSP", source, version_times=version_times,
    )

    answer = engine.run(parse_specs([
        # Point in time, by version and by ingest timestamp.
        {"mode": "point", "as_of": 3},
        {"mode": "point", "as_of_timestamp": 1125.0},  # resolves to v12
        # One vertex's trajectory across the whole history.
        {"mode": "timeline", "vertex": 7},
        # Whole-history aggregates, one value per vertex.
        {"mode": "aggregate", "agg": "min"},
        {"mode": "aggregate", "agg": "first_reachable"},
        {"mode": "aggregate", "agg": "top_volatile", "k": 5},
        # What changed between the first and last version?
        {"mode": "diff", "a": 0, "b": vc.num_versions - 1},
        # Smoothed trend: sliding mean over 4-version windows.
        {"mode": "rollup", "vertex": 7, "agg": "mean", "width": 4},
    ]))

    print(f"batch of {len(answer.results)} specs answered with "
          f"{answer.ranges_evaluated} descent(s) over "
          f"{answer.snapshots_scanned} snapshots\n")

    point, stamped, timeline, best, first_seen, volatile, diff, trend = (
        answer.results
    )

    values = np.asarray(point["values"])
    print(f"as of version 3: {np.isfinite(values).sum()} vertices "
          f"reachable from {source}")
    print(f"as of t=1125.0: resolved to version {stamped['version']}")

    series = np.asarray(timeline["values"])
    print(f"vertex 7 distance over time: first {series[0]:.0f}, "
          f"last {series[-1]:.0f}, best {series.min():.0f}")

    ever = np.isfinite(np.asarray(best["values"])).sum()
    late = int((np.asarray(first_seen["values"]) > 0).sum())
    print(f"{ever} vertices were reachable at some point; "
          f"{late} only became reachable after version 0")

    pairs = ", ".join(
        f"v{vertex}x{count}" for vertex, count in
        zip(volatile["vertices"].tolist(), volatile["counts"].tolist())
    )
    print(f"most volatile vertices (changes across history): {pairs}")

    print(f"diff v0 -> v{vc.num_versions - 1}: "
          f"{diff['value_changed']} values changed, "
          f"{diff['became_reachable']} became reachable, "
          f"{diff['became_unreachable']} became unreachable "
          f"({diff['edge_additions']} edge adds, "
          f"{diff['edge_deletions']} edge dels)")

    smoothed = np.asarray(trend["values"])
    print(f"vertex 7 smoothed trend ({len(smoothed)} windows of width 4): "
          f"{np.round(smoothed, 1).tolist()}")

    # The same questions are one request against a running service:
    #   repro serve --store ./store &
    #   repro temporal timeline --vertex 7 --algorithm SSSP --source 0
    #   repro temporal diff --a 0 --b 23 --algorithm SSSP --source 0


if __name__ == "__main__":
    main()
