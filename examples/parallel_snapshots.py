#!/usr/bin/env python
"""Parallel Direct-Hop: breaking the streaming dependency chain.

KickStarter must visit snapshots in order — snapshot t's results seed
snapshot t+1.  The CommonGraph breaks that chain: every snapshot is an
independent additions-only hop from the same converged state, so hops
can run concurrently.  This example reproduces the Table 5 projection
(longest-single-hop) and also actually runs the hops on a thread pool.

Run:  python examples/parallel_snapshots.py
"""

import repro


def main() -> None:
    base = repro.generate_dataset("LJ", edge_scale=0.5)
    spec_vertices = repro.DATASETS["LJ"].num_vertices
    base_csr = repro.CSRGraph.from_edge_set(base, spec_vertices)
    source = int(base_csr.degrees().argmax())

    evolving = repro.generate_evolving_graph(
        num_vertices=spec_vertices,
        base=base,
        num_snapshots=25,
        batch_size=75,
        seed=5,
        name="LJ-parallel",
        protect_vertex=source,
    )
    weight_fn = repro.default_weights()
    decomp = repro.CommonGraphDecomposition.from_evolving(evolving)

    # Sequential baseline: KickStarter streaming.
    streaming = repro.StreamingSession(
        evolving, repro.SSSP(), source, weight_fn=weight_fn, keep_values=False
    ).run()
    print(f"KickStarter (sequential, forced): {streaming.total_seconds:.3f}s")

    parallel = repro.ParallelDirectHop(
        decomp, repro.SSSP(), source, weight_fn=weight_fn
    ).run(use_pool=True, max_workers=8)

    print(f"Direct-Hop, sequential sum of hops: "
          f"{parallel.sequential_seconds:.3f}s "
          f"(+ {parallel.initial_seconds:.3f}s once on the common graph)")
    print(f"Direct-Hop, longest single hop:     "
          f"{parallel.critical_path_seconds * 1e3:.2f}ms")
    print(f"Direct-Hop, real 8-thread pool:     {parallel.pool_wall_seconds:.3f}s")

    projection = streaming.total_seconds / parallel.critical_path_seconds
    actual = streaming.total_seconds / parallel.pool_wall_seconds
    print(f"\ncritical-path projection (paper's Table 5 metric): "
          f"{projection:.0f}x over KickStarter")
    print(f"achieved with a thread pool in this process:       {actual:.1f}x")
    print("\n(the projection assumes one core per snapshot; the pool number is\n"
          " bounded by Python-side overheads and this machine's cores)")


if __name__ == "__main__":
    main()
