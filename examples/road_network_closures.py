#!/usr/bin/env python
"""Road-network what-if analysis over a window of closures/reopenings.

The paper's transportation example: snapshots correspond to the road
network at different times as segments close (accidents, construction)
and reopen.  We build a city-like grid network by hand (showing the
library on non-RMAT input), evolve it with closures that are later
reverted — exactly the re-addition pattern the CommonGraph exploits —
and evaluate two queries from the depot across all snapshots:

* SSSP: fastest route cost to every intersection;
* SSNP: the "narrowest-bottleneck" route (minimise the worst segment).

Run:  python examples/road_network_closures.py
"""

import numpy as np

import repro


def build_grid(side: int) -> repro.EdgeSet:
    """A side x side street grid with bidirectional segments."""
    pairs = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                pairs.append((v, v + 1))
                pairs.append((v + 1, v))
            if r + 1 < side:
                pairs.append((v, v + side))
                pairs.append((v + side, v))
    return repro.EdgeSet.from_pairs(pairs)


def main() -> None:
    side = 40
    num_vertices = side * side
    base = build_grid(side)
    depot = 0
    print(f"road grid: {side}x{side}, {len(base)} directed segments")

    # 15 snapshots; each step closes ~30 segments and reopens earlier
    # closures with high probability (readd_fraction=0.9).
    evolving = repro.generate_evolving_graph(
        num_vertices=num_vertices,
        base=base,
        num_snapshots=15,
        batch_size=60,
        add_fraction=0.5,
        readd_fraction=0.9,
        seed=11,
        name="roads",
        protect_vertex=depot,
    )
    decomp = repro.CommonGraphDecomposition.from_evolving(evolving)
    print(f"common (always-open) segments: {len(decomp.common)} / {len(base)}")

    weight_fn = repro.HashWeights(max_weight=9, seed=3)  # travel minutes

    for algorithm, unit in ((repro.SSSP(), "min"), (repro.SSNP(), "worst seg")):
        result = repro.DirectHopEvaluator(
            decomp, algorithm, depot, weight_fn=weight_fn
        ).run()
        corner = num_vertices - 1  # far corner of the city
        series = [v[corner] for v in result.snapshot_values]
        reachable = sum(np.isfinite(s) for s in series)
        print(f"\n{algorithm.name} depot->far-corner over time "
              f"({unit}): "
              + " ".join("x" if not np.isfinite(s) else f"{s:.0f}" for s in series))
        print(f"  reachable in {reachable}/{len(series)} snapshots; "
              f"best {min(series):.0f}, worst "
              f"{max(s for s in series if np.isfinite(s)):.0f}")

    # What-if: compare two specific snapshots with the diff primitive.
    vc = repro.VersionController(evolving, weight_fn=weight_fn)
    diff = vc.diff(0, evolving.num_snapshots - 1)
    print(f"\nbetween first and last snapshot: {len(diff.additions)} segments "
          f"opened, {len(diff.deletions)} closed")


if __name__ == "__main__":
    main()
