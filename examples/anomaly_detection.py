#!/usr/bin/env python
"""Detecting a disruption in an evolving network from query trends.

A monitoring scenario: a service-dependency network evolves through
routine churn, until an incident at a known point in time knocks out a
set of links around a major hub.  We track SSWP ("widest path" =
best-available bandwidth) trends from the ingress node across all
snapshots with the Work-Sharing evaluator and let the change detector
find the incident — without ever being told where it is.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

import repro
from repro.analysis import TrendTracker, detect_changes


def main() -> None:
    num_vertices = 1 << 10
    base = repro.rmat_edges(scale=10, num_edges=14_000, seed=31)
    base_csr = repro.CSRGraph.from_edge_set(base, num_vertices)
    ingress = int(np.argmax(base_csr.degrees()))

    # Routine churn for 24 "hours" ...
    evolving = repro.generate_evolving_graph(
        num_vertices=num_vertices, base=base, num_snapshots=24,
        batch_size=80, readd_fraction=0.6, seed=32, name="services",
        protect_vertex=ingress,
    )
    # ... then inject an incident at hour 24: 60% of the ingress node's
    # own uplinks go down.
    current = evolving.snapshot_edges(-1)
    uplinks = [(u, v) for u, v in current if u == ingress]
    cut = repro.EdgeSet.from_pairs(uplinks[: int(len(uplinks) * 0.6)])
    evolving.append_batch(repro.DeltaBatch(deletions=cut))
    # A few more routine hours after the incident.
    gen = repro.UpdateStreamGenerator(
        num_vertices, evolving.snapshot_edges(-1), batch_size=80,
        seed=33, protect_vertex=ingress,
    )
    for _ in range(5):
        evolving.append_batch(gen.next_batch())
    print(f"{evolving.num_snapshots} snapshots; incident: cut "
          f"{len(cut)} of ingress {ingress}'s uplinks at snapshot 24")

    tracker = TrendTracker(
        evolving, repro.SSWP(), ingress,
        weight_fn=repro.default_weights(), strategy="work-sharing",
    )
    report = tracker.track(metrics=("reach", "mean"))
    print()
    print(report.chart(names=("mean",), title="mean available bandwidth",
                       width=60, height=10))

    flagged = set()
    for name, series in report.series.items():
        for idx in detect_changes(series, threshold=6.0):
            flagged.add(report.first_snapshot + idx)
            print(f"change detected in {name!r} at snapshot "
                  f"{report.first_snapshot + idx}")
    assert 24 in flagged, "the injected incident should be detected"
    print("\nincident correctly localised at snapshot 24")


if __name__ == "__main__":
    main()
