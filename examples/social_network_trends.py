#!/usr/bin/env python
"""Evolving-graph analytics on a social network: influence-reach trends.

The motivating scenario of the paper's introduction: a query applied to
many snapshots of a social graph to track how a property evolves over
time.  Here the query is BFS hop distance from the most-followed user;
the tracked properties are how many users they can reach and how far
the reach extends, across 20 daily snapshots with follower churn.

The evaluation uses the Work-Sharing schedule; we also print the
schedule itself so you can see where additions are shared.

Run:  python examples/social_network_trends.py
"""

import numpy as np

import repro
from repro.core.triangular_grid import TriangularGrid


def main() -> None:
    # A power-law "follower" graph: RMAT mimics social-network structure.
    num_vertices = 1 << 11
    base = repro.rmat_edges(scale=11, num_edges=30_000, seed=1)

    # Pick the most-followed user (max out-degree in the follow graph).
    base_csr = repro.CSRGraph.from_edge_set(base, num_vertices)
    influencer = int(np.argmax(base_csr.degrees()))
    print(f"influencer: user {influencer} "
          f"({base_csr.out_degree(influencer)} follows)")

    # 20 daily snapshots; each day ~400 follow/unfollow events, and a
    # third of new follows are re-follows of previously dropped edges.
    evolving = repro.generate_evolving_graph(
        num_vertices=num_vertices,
        base=base,
        num_snapshots=20,
        batch_size=400,
        add_fraction=0.5,
        readd_fraction=0.33,
        seed=2,
        name="social",
        protect_vertex=influencer,
    )

    decomp = repro.CommonGraphDecomposition.from_evolving(evolving)
    grid = TriangularGrid(decomp)
    evaluator = repro.WorkSharingEvaluator(
        decomp, repro.BFS(), influencer, weight_fn=repro.UnitWeights()
    )
    schedule = evaluator.schedule
    print(f"\nschedule: {schedule.num_stabilisations()} incremental steps, "
          f"{schedule.cost(grid)} additions "
          f"(direct-hop would stream {decomp.total_direct_hop_additions()})")
    shared = [
        (parent, child) for parent, child in schedule.edges()
        if child[0] != child[1]
    ]
    if shared:
        print("intermediate common graphs used for sharing:")
        for parent, child in shared:
            print(f"  ICG{child} reached from {parent} "
                  f"(+{grid.weight(parent, child)} edges, "
                  f"shared by snapshots {child[0]}..{child[1]})")

    result = evaluator.run()

    # Trend report: reach and eccentricity of the influencer per day.
    print(f"\n{'day':>4} {'reached':>8} {'max hops':>9} {'avg hops':>9}")
    for day, values in enumerate(result.snapshot_values):
        finite = values[np.isfinite(values)]
        print(f"{day:>4} {finite.size:>8} {int(finite.max()):>9} "
              f"{finite.mean():>9.2f}")

    reach = [int(np.isfinite(v).sum()) for v in result.snapshot_values]
    trend = "grew" if reach[-1] > reach[0] else "shrank"
    print(f"\ninfluence reach {trend}: {reach[0]} -> {reach[-1]} users "
          f"over {evolving.num_snapshots} days")


if __name__ == "__main__":
    main()
