#!/usr/bin/env python
"""Extending the engine with a custom monotonic algorithm.

Any query whose edge function is monotonic — a better upstream value
never produces a worse proposal — plugs into every engine in the
package: static, streaming (including trim-and-repair deletions),
Direct-Hop and Work-Sharing.  This example adds *bounded-hop SSSP*
(shortest path counting at most a fixed extra penalty per hop, a common
routing heuristic) and runs it across an evolving graph.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

import repro


class HopPenaltySSSP(repro.MonotonicAlgorithm):
    """Shortest path where every hop also costs a fixed penalty.

    Proposal: ``Val(u) + wt(u, v) + penalty`` — monotone in ``Val(u)``,
    so all incremental machinery applies unchanged.
    """

    name = "HopPenaltySSSP"
    direction = "min"
    worst = np.inf
    source_value = 0.0
    penalty = 5.0

    def proposals(self, src_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return src_values + weights + self.penalty


def main() -> None:
    from repro.testing import assert_monotonic

    assert_monotonic(HopPenaltySSSP())  # verify the contract up front
    repro.register_algorithm(HopPenaltySSSP)
    print(f"registered algorithms: {', '.join(repro.algorithm_names())}")

    base = repro.rmat_edges(scale=10, num_edges=10_000, seed=3)
    evolving = repro.generate_evolving_graph(
        num_vertices=1 << 10, base=base, num_snapshots=10,
        batch_size=120, seed=4, name="custom",
    )
    decomp = repro.CommonGraphDecomposition.from_evolving(evolving)
    weight_fn = repro.default_weights()
    alg = repro.get_algorithm("hoppenaltysssp")

    # The custom algorithm goes through all three evaluation strategies
    # and they agree, deletions and all.
    streaming = repro.StreamingSession(evolving, alg, 0, weight_fn=weight_fn).run()
    direct = repro.DirectHopEvaluator(decomp, alg, 0, weight_fn=weight_fn).run()
    sharing = repro.WorkSharingEvaluator(decomp, alg, 0, weight_fn=weight_fn).run()
    for i in range(evolving.num_snapshots):
        assert np.array_equal(streaming.snapshot_values[i], direct.snapshot_values[i])
        assert np.array_equal(streaming.snapshot_values[i], sharing.snapshot_values[i])
    print("custom algorithm verified across streaming, direct-hop and "
          "work-sharing")

    finals = direct.snapshot_values[-1]
    reached = np.isfinite(finals)
    print(f"\nsnapshot {evolving.num_snapshots - 1}: reached "
          f"{int(reached.sum())} vertices; "
          f"mean penalised distance {finals[reached].mean():.1f} "
          f"(plain SSSP would be lower by ~{HopPenaltySSSP.penalty:.0f}/hop)")


if __name__ == "__main__":
    main()
