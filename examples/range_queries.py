#!/usr/bin/env python
"""Range queries: analysing a window of history without replaying it.

The paper's conclusion highlights that CommonGraph "enables efficient
range queries without having to start from an initial stored snapshot".
This example keeps a version-controlled evolving graph, then answers a
query over just versions 30..39 of 40.  The window is evaluated from
the window's *own* intermediate common graph, which is much closer to
the window's snapshots than the global common graph is — so far fewer
additions are streamed, and none of versions 0..29 are touched at all.
A streaming system would have to replay 30 versions of history first.

Run:  python examples/range_queries.py
"""

import numpy as np

import repro
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator


def main() -> None:
    num_vertices = 1 << 10
    base = repro.rmat_edges(scale=10, num_edges=15_000, seed=21)
    evolving = repro.generate_evolving_graph(
        num_vertices=num_vertices, base=base, num_snapshots=40,
        batch_size=200, readd_fraction=0.4, seed=22, name="history",
    )
    weight_fn = repro.default_weights()
    vc = repro.VersionController(evolving, weight_fn=weight_fn)
    alg = repro.SSSP()
    first, last = 30, 39

    # The window query: one call, rooted at ICG(30, 39).
    window = vc.evaluate(alg, source=0, first=first, last=last)
    print(f"evaluated versions {first}..{last}: "
          f"{len(window.snapshot_values)} result arrays, "
          f"{window.additions_processed} additions streamed, "
          f"{window.stabilisations} incremental steps")

    # The same versions from the *global* common graph (what a plain
    # direct-hop over the full history would do for these snapshots).
    decomp = CommonGraphDecomposition.from_evolving(evolving)
    global_additions = sum(
        len(decomp.direct_hop_batch(v)) for v in range(first, last + 1)
    )
    print(f"hopping from the global common graph instead would stream "
          f"{global_additions} additions "
          f"({global_additions / max(window.additions_processed, 1):.1f}x more)")

    # Values are exactly the same either way.
    full = DirectHopEvaluator(decomp, alg, 0, weight_fn=weight_fn).run()
    for k in range(first, last + 1):
        assert np.array_equal(
            window.snapshot_values[k - first], full.snapshot_values[k]
        )
    print("window results verified against the full evaluation")

    # A quick trend over the window: mean distance from the source.
    print(f"\n{'version':>8} {'reached':>8} {'mean dist':>10}")
    for k, values in enumerate(window.snapshot_values):
        finite = values[np.isfinite(values)]
        print(f"{first + k:>8} {finite.size:>8} {finite.mean():>10.2f}")

    # The same window through the temporal surface: declarative specs
    # instead of hand-rolled loops, same one-descent evaluation.  See
    # examples/time_travel.py for the full vocabulary.
    from repro.temporal import TemporalEngine, parse_specs

    engine = TemporalEngine.for_controller(vc, "SSSP", 0)
    answer = engine.run(parse_specs([
        {"mode": "timeline", "vertex": 5, "first": first, "last": last},
        {"mode": "aggregate", "agg": "first_reachable",
         "first": first, "last": last},
    ]))
    timeline, reachable = answer.results
    print(f"\ntemporal batch: {answer.ranges_evaluated} descent for "
          f"{answer.snapshots_scanned} snapshots")
    print(f"vertex 5 over {first}..{last}: {timeline['values'].tolist()}")
    newly = int((np.asarray(reachable['values']) > first).sum())
    print(f"{newly} vertices first became reachable inside the window")


if __name__ == "__main__":
    main()
